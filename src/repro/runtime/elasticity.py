"""Queue-driven autoscaling of the sharded serving tier.

The controller turns the runtime's load signals into membership calls on
the gateway.  Every ``window_s`` of virtual time it computes, over the
window just closed:

* **occupancy** — virtual busy-seconds accrued by all lanes divided by
  ``window · num_shards`` (1.0 = every lane saturated);
* **shed rate** — admission-bucket rejections per second (requests the
  tier turned away at the front door);
* **backlog** — the deepest lane's unfinished virtual work, in seconds,
  and the pending micro-batch count across lane queues.

Any *pressure* signal above its threshold grows the tier (multiplicative
step, classic additive-increase-is-too-slow reasoning for a 4× load jump);
a fully quiet window shrinks it by one.  Every membership change re-tunes
the admission token bucket to ``admission_rate_per_shard · num_shards`` —
capacity and admission move together, so the bucket keeps shedding at the
tier's true limit rather than at a stale one.

The controller is deliberately gateway-duck-typed: it calls only
``scale_up``/``scale_down``, the public signal accessors, and the bucket's
``set_rate`` — it owns no mechanism of its own.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ElasticityPolicy", "ScalingEvent", "ElasticityController"]


@dataclass(frozen=True)
class ElasticityPolicy:
    """Thresholds and bounds of the autoscaler.

    ``scale_up_factor`` is the multiplicative growth step (2.0 doubles the
    tier per pressure window, reaching any bound in O(log) windows);
    scale-down is always single-shard, because removal costs a
    synchronization round and oscillation is worse than a lazy shrink.
    ``admission_rate_per_shard`` of None leaves the token bucket alone.
    """

    min_shards: int = 1
    max_shards: int = 8
    window_s: float = 60.0
    cooldown_s: float = 60.0
    scale_up_occupancy: float = 0.85
    scale_up_backlog_s: float = 2.0
    scale_up_queue_depth: float = 4.0
    scale_up_shed_rate: float = 0.0
    scale_down_occupancy: float = 0.30
    scale_up_factor: float = 2.0
    # Fraction of the post-shrink tier's admission capacity the window's
    # admitted load must fit into before a scale-down is allowed.  This is
    # what damps flapping: with per-shard admission, a tier serving near
    # its bucket limit shows LOW lane occupancy (the bucket, not the lane,
    # is the binding constraint), so occupancy alone would shrink a tier
    # that immediately sheds and grows again.
    scale_down_headroom: float = 0.8
    admission_rate_per_shard: float | None = None
    # Treat a firing SLO alert (gateway.slo_engine) as scale-up pressure:
    # the burn-rate engine watches user-facing objectives (latency, shed,
    # staleness) the window signals above only proxy, so an alert-driven
    # grow reacts to budget burn even when occupancy still looks tame.
    # Off by default — alert consumption is an opt-in policy input.
    scale_up_on_alert: bool = False

    def __post_init__(self) -> None:
        if self.min_shards <= 0:
            raise ValueError("min_shards must be positive")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be at least min_shards")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.scale_up_factor <= 1.0:
            raise ValueError("scale_up_factor must exceed 1")
        if not 0.0 <= self.scale_down_occupancy < self.scale_up_occupancy:
            raise ValueError(
                "scale_down_occupancy must be in [0, scale_up_occupancy)"
            )
        if not 0.0 < self.scale_down_headroom <= 1.0:
            raise ValueError("scale_down_headroom must be in (0, 1]")
        if (
            self.admission_rate_per_shard is not None
            and self.admission_rate_per_shard <= 0
        ):
            raise ValueError("admission_rate_per_shard must be positive")


@dataclass(frozen=True)
class ScalingEvent:
    """One membership change and the window signals that triggered it."""

    time: float
    action: str  # "add" | "remove"
    shard_ids: tuple[str, ...]
    num_shards: int  # tier size after the event
    reason: str
    occupancy: float
    shed_rate: float
    backlog_s: float
    queue_depth: float

    def describe(self) -> str:
        sign = "+" if self.action == "add" else "-"
        return (
            f"t={self.time:8.1f}s  {sign}{len(self.shard_ids)} -> "
            f"{self.num_shards} shards  [{self.reason}]  "
            f"occ={self.occupancy:.2f} shed={self.shed_rate:.2f}/s "
            f"backlog={self.backlog_s:.2f}s depth={self.queue_depth:.1f}"
        )


@dataclass
class _WindowSnapshot:
    """Counter values at the start of the current observation window."""

    start: float
    busy_seconds: float
    shed: int
    results: int


class ElasticityController:
    """Sliding-window autoscaler bound to one gateway."""

    def __init__(self, policy: ElasticityPolicy, gateway) -> None:
        self.policy = policy
        self.gateway = gateway
        self.events: list[ScalingEvent] = []
        self._window: _WindowSnapshot | None = None
        self._last_event_time: float | None = None
        self._scale_ups = gateway.metrics.counter(
            "runtime.scale_ups", "autoscaler shard additions"
        )
        self._scale_downs = gateway.metrics.counter(
            "runtime.scale_downs", "autoscaler shard removals"
        )
        if not policy.min_shards <= gateway.num_shards <= policy.max_shards:
            raise ValueError(
                f"gateway starts at {gateway.num_shards} shards, outside "
                f"[{policy.min_shards}, {policy.max_shards}]"
            )

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, now: float) -> None:
        """Advance the sliding window; decide at each window boundary."""
        if self._window is None:
            self._window = self._snapshot(now)
            return
        elapsed = now - self._window.start
        if elapsed < self.policy.window_s:
            return
        self._evaluate(now, elapsed)
        self._window = self._snapshot(now)

    def _snapshot(self, now: float) -> _WindowSnapshot:
        return _WindowSnapshot(
            start=now,
            busy_seconds=self.gateway.total_busy_seconds(),
            shed=self.gateway.requests_shed(),
            results=self.gateway.results_received(),
        )

    def _signals(
        self, now: float, elapsed: float
    ) -> tuple[float, float, float, float, float]:
        assert self._window is not None
        busy = self.gateway.total_busy_seconds() - self._window.busy_seconds
        occupancy = busy / (elapsed * max(1, self.gateway.num_shards))
        shed_rate = (self.gateway.requests_shed() - self._window.shed) / elapsed
        admitted_rate = (
            self.gateway.results_received() - self._window.results
        ) / elapsed
        backlog_s = self.gateway.max_backlog_s(now)
        runtime = getattr(self.gateway, "runtime", None)
        queue_depth = (
            float(runtime.max_queue_depth(now)) if runtime is not None else 0.0
        )
        return occupancy, shed_rate, backlog_s, queue_depth, admitted_rate

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _evaluate(self, now: float, elapsed: float) -> None:
        occupancy, shed_rate, backlog_s, queue_depth, admitted_rate = (
            self._signals(now, elapsed)
        )
        if self._last_event_time is not None and (
            now - self._last_event_time < self.policy.cooldown_s
        ):
            return
        policy = self.policy
        num_shards = self.gateway.num_shards

        pressure = []
        if occupancy > policy.scale_up_occupancy:
            pressure.append(f"occupancy {occupancy:.2f}")
        if shed_rate > policy.scale_up_shed_rate:
            pressure.append(f"shed {shed_rate:.2f}/s")
        if backlog_s > policy.scale_up_backlog_s:
            pressure.append(f"backlog {backlog_s:.2f}s")
        if queue_depth > policy.scale_up_queue_depth:
            pressure.append(f"queue depth {queue_depth:.1f}")
        if policy.scale_up_on_alert:
            engine = getattr(self.gateway, "slo_engine", None)
            alerts = engine.active_alerts() if engine is not None else ()
            if alerts:
                pressure.append("slo alert " + "+".join(alerts))

        if pressure and num_shards < policy.max_shards:
            target = min(
                policy.max_shards,
                max(num_shards + 1, int(num_shards * policy.scale_up_factor)),
            )
            added = tuple(
                self.gateway.scale_up(now) for _ in range(target - num_shards)
            )
            self._scale_ups.increment(len(added))
            self._record(
                now, "add", added, ", ".join(pressure),
                occupancy, shed_rate, backlog_s, queue_depth,
            )
            return

        # "Quiet" tolerates the instantaneous residue of the batch that was
        # enqueued this very event (observation rides on request handling,
        # so a just-submitted batch always shows as depth 1 / one service
        # time of backlog): the bars are fractions of the scale-up bars,
        # not exact zeros.
        quiet = (
            occupancy < policy.scale_down_occupancy
            and shed_rate == 0.0
            and backlog_s <= 0.5 * policy.scale_up_backlog_s
            and queue_depth <= 0.5 * policy.scale_up_queue_depth
        )
        if quiet and policy.admission_rate_per_shard is not None:
            # Safety: only shrink when the post-shrink tier's admission
            # capacity would still have absorbed this window's load (with
            # headroom).  Lane occupancy alone is blind to a bucket-bound
            # tier and would flap: shed → grow → "idle" → shrink → shed.
            post_shrink_capacity = policy.admission_rate_per_shard * (
                num_shards - 1
            )
            quiet = admitted_rate <= (
                policy.scale_down_headroom * post_shrink_capacity
            )
        if quiet and num_shards > policy.min_shards:
            removed = (self.gateway.scale_down(now),)
            self._scale_downs.increment()
            self._record(
                now, "remove", removed, f"occupancy {occupancy:.2f}",
                occupancy, shed_rate, backlog_s, queue_depth,
            )

    def _record(
        self,
        now: float,
        action: str,
        shard_ids: tuple[str, ...],
        reason: str,
        occupancy: float,
        shed_rate: float,
        backlog_s: float,
        queue_depth: float,
    ) -> None:
        self._last_event_time = now
        event = ScalingEvent(
            time=now,
            action=action,
            shard_ids=shard_ids,
            num_shards=self.gateway.num_shards,
            reason=reason,
            occupancy=occupancy,
            shed_rate=shed_rate,
            backlog_s=backlog_s,
            queue_depth=queue_depth,
        )
        self.events.append(event)
        journal = getattr(self.gateway, "journal", None)
        if journal is not None:
            journal.scaling(event)
        self._retune_admission(now)

    def _retune_admission(self, now: float) -> None:
        rate = self.policy.admission_rate_per_shard
        bucket = getattr(self.gateway, "bucket", None)
        if rate is None or bucket is None:
            return
        bucket.set_rate(rate * self.gateway.num_shards, now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def timeline(self) -> str:
        """The scaling-event log, one line per membership change."""
        if not self.events:
            return "no scaling events"
        return "\n".join(event.describe() for event in self.events)
