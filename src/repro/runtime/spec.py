"""``RuntimeSpec``: the declarative knobs of the serving runtime.

A spec is pure configuration — the gateway materializes it into a
:class:`~repro.runtime.runtime.ShardRuntime` (and, when ``autoscale`` is
set, an :class:`~repro.runtime.elasticity.ElasticityController`).  It can
ride on a :class:`~repro.api.ServerSpec` so one frozen recipe describes
both the per-shard pipeline and the tier that runs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.elasticity import ElasticityPolicy

if TYPE_CHECKING:  # import-time cycle: gateway imports repro.runtime
    from repro.gateway.scheduling import RoutingSpec

__all__ = ["RuntimeSpec"]

MODES = ("sync", "async")
EXECUTORS = ("virtual", "threads")


@dataclass(frozen=True)
class RuntimeSpec:
    """How flushed micro-batches execute, and whether the tier self-sizes.

    ``mode`` selects the delivery path: ``"sync"`` applies each batch on
    the caller's thread exactly as a runtime-less gateway would (useful to
    keep autoscaling without asynchrony), ``"async"`` hands it to the
    shard's worker lane.  ``executor`` picks the substrate for async
    delivery: ``"virtual"`` executes inline on the discrete-event clock —
    deterministic, bit-identical to the sync path with ample queue
    capacity — while ``"threads"`` runs lanes on a shared
    ``ThreadPoolExecutor`` of ``workers`` threads for wall-clock serving.

    ``queue_capacity`` bounds each shard lane's pending micro-batches;
    a batch arriving to a full lane is rejected outright (its results are
    counted, never silently dropped), so overload degrades throughput
    instead of growing memory without bound.  ``autoscale`` attaches a
    queue-driven :class:`ElasticityPolicy`; None keeps shard count manual.
    ``routing`` attaches a device-placement recipe
    (:class:`~repro.gateway.scheduling.RoutingSpec`); None keeps the
    consistent-hash default.  Routing is orthogonal to delivery —
    ``RuntimeSpec(mode="sync", routing=...)`` configures placement while
    batches still apply on the caller's thread.
    """

    mode: str = "async"
    executor: str = "virtual"
    workers: int = 2
    queue_capacity: int = 64
    autoscale: ElasticityPolicy | None = None
    routing: RoutingSpec | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        # Duck-checked (a module-level RoutingSpec import would cycle
        # through repro.gateway, which imports repro.runtime).
        if self.routing is not None and not callable(
            getattr(self.routing, "build", None)
        ):
            raise TypeError("routing must be a RoutingSpec (or expose build())")
