"""repro.runtime — the elastic asynchronous serving runtime.

This package slots between :class:`~repro.gateway.gateway.Gateway` and
its :class:`~repro.server.server.FleetServer` shards.  The gateway stays
the *policy* tier (routing, admission, micro-batch boundaries, shard
synchronization); the runtime is the *mechanism* tier that decides where
and when a flushed micro-batch actually executes:

* :class:`ShardRuntime` — one serialized worker lane per shard pulling
  flushed micro-batches off a bounded queue and running
  decode → stage ``on_batch`` → ``submit_many`` off the caller's thread
  (:mod:`repro.runtime.runtime`);
* :class:`VirtualLaneExecutor` / :class:`ThreadLaneExecutor` — the two
  execution substrates: a deterministic discrete-event mode that is
  bit-identical to the synchronous path, and a thread pool for wall-clock
  serving (:mod:`repro.runtime.executors`);
* :class:`ElasticityController` — queue-driven autoscaling: watches
  occupancy, backlog and shed rate over a sliding window and calls the
  gateway's ``scale_up``/``scale_down`` between configurable bounds
  (:mod:`repro.runtime.elasticity`);
* :class:`ServiceTimeEstimator` — fits observed batch service times back
  into an :class:`~repro.gateway.gateway.AggregationCostModel`
  (:mod:`repro.runtime.telemetry`).
"""

from repro.runtime.elasticity import (
    ElasticityController,
    ElasticityPolicy,
    ScalingEvent,
)
from repro.runtime.executors import (
    BatchTicket,
    ThreadLaneExecutor,
    VirtualLaneExecutor,
)
from repro.runtime.runtime import ShardRuntime
from repro.runtime.spec import RuntimeSpec
from repro.runtime.telemetry import ServiceTimeEstimator

__all__ = [
    "RuntimeSpec",
    "ShardRuntime",
    "BatchTicket",
    "VirtualLaneExecutor",
    "ThreadLaneExecutor",
    "ElasticityController",
    "ElasticityPolicy",
    "ScalingEvent",
    "ServiceTimeEstimator",
]
