"""``ShardRuntime``: bounded per-shard lanes in front of the executors.

The gateway hands each flushed micro-batch to :meth:`ShardRuntime.submit`
as an opaque job (decode → stage ``on_batch`` → ``submit_many``, closed
over the shard).  The runtime's responsibilities around that job:

* **admission to the lane** — each shard lane holds at most
  ``queue_capacity`` unfinished micro-batches; a batch arriving to a full
  lane is rejected (counted per batch and per result) instead of queueing
  without bound;
* **occupancy modeling** — on the virtual executor, jobs execute inline
  (deterministically) but *occupy* their lane for the cost model's service
  time of virtual clock, so queue depth and backlog are real signals for
  the autoscaler even though state mutation is immediate.  On the thread
  executor the queue depth is literal and service time is wall-clock;
* **telemetry** — queue depth at enqueue, per-batch service time,
  executed/rejected counters — all exported through the gateway's
  :class:`~repro.server.telemetry.MetricsRegistry`.  Wall-clock service
  measurements (threads executor only — the virtual executor's service
  times are the cost model's own output, and feeding them back would be
  circular) also flow into a
  :class:`~repro.runtime.telemetry.ServiceTimeEstimator` so the affine
  :class:`~repro.gateway.gateway.AggregationCostModel` can be re-fitted
  from observation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.runtime.executors import (
    BatchTicket,
    ThreadLaneExecutor,
    VirtualLaneExecutor,
)
from repro.runtime.spec import RuntimeSpec
from repro.runtime.telemetry import ServiceTimeEstimator

if TYPE_CHECKING:  # annotation-only: runtime must not import the gateway
    from repro.gateway.gateway import AggregationCostModel
    from repro.observability import EventJournal
    from repro.server.telemetry import MetricsRegistry

__all__ = ["ShardRuntime"]


@dataclass
class _LaneState:
    """Virtual occupancy of one shard lane (the queue model).

    ``finishes`` holds the modeled completion time of every unfinished
    micro-batch, oldest first; the lane is busy until ``finishes[-1]``.
    The formula mirrors the gateway's ``_ShardLane`` throughput accounting
    by design — the runtime applies it at *admission* (before the job
    runs, so capacity checks can shed), the gateway at *delivery*.
    ``rejects`` remembers the most recent capacity sheds as
    ``(time, batch_size)`` pairs — a bounded trace the router reads as a
    per-shard "recently overloaded" pressure signal.
    """

    finishes: deque = field(default_factory=deque)
    rejects: deque = field(default_factory=lambda: deque(maxlen=128))

    def busy_until(self, now: float) -> float:
        return self.finishes[-1] if self.finishes else now


class ShardRuntime:
    """Bounded queues + serialized worker lanes for every shard."""

    def __init__(
        self,
        spec: RuntimeSpec,
        metrics: "MetricsRegistry",
        cost_model: "AggregationCostModel | None" = None,
        journal: "EventJournal | None" = None,
    ) -> None:
        self.spec = spec
        self.cost_model = cost_model
        # Optional event journal (the gateway's): capacity sheds are
        # decisions worth attributing, not just counting.
        self._journal = journal
        # The estimator's running sums are fed from lane threads (see
        # ``timed_job``) and read on the caller's thread, so every touch
        # happens under the telemetry lock.
        self.estimator = ServiceTimeEstimator()  # guarded-by: _telemetry_lock
        self._virtual = spec.executor == "virtual"
        self.executor = (
            VirtualLaneExecutor()
            if self._virtual
            else ThreadLaneExecutor(workers=spec.workers)
        )
        self._lanes: dict[str, _LaneState] = {}
        self._dead_lanes: set[str] = set()
        # Guards telemetry shared across lane threads (counters, summary
        # deques, the estimator's running sums).  Uncontended in virtual
        # mode; in threads mode it serializes only the cheap bookkeeping,
        # never the decode/fold work.
        self._telemetry_lock = threading.Lock()
        self._batches = metrics.counter(
            "runtime.batches", "micro-batches executed by worker lanes"
        )
        self._rejected_batches = metrics.counter(
            "runtime.batches_rejected", "micro-batches dropped by full lanes"
        )
        self._rejected_results = metrics.counter(
            "runtime.results_rejected", "results inside dropped micro-batches"
        )
        self._depth_summary = metrics.summary(
            "runtime.queue_depth", "lane queue depth observed at enqueue"
        )
        self._service_summary = metrics.summary(
            "runtime.service_s", "per-batch service time (virtual or wall)"
        )

    # ------------------------------------------------------------------
    # Lane membership
    # ------------------------------------------------------------------
    def add_lane(self, shard_id: str) -> None:
        self._lanes.setdefault(shard_id, _LaneState())
        self._dead_lanes.discard(shard_id)

    def drop_lane(self, shard_id: str) -> None:
        self._lanes.pop(shard_id, None)
        self._dead_lanes.discard(shard_id)
        self.executor.drop_lane(shard_id)

    # ------------------------------------------------------------------
    # Lane liveness (crash injection + failure detection)
    # ------------------------------------------------------------------
    def fail_lane(self, shard_id: str) -> None:
        """Kill a lane: queued occupancy is lost, submissions bounce.

        Models a shard process crash — the in-flight micro-batches on the
        lane die with it (at-most-once for work past the WAL), and the
        lane stops accepting jobs until :meth:`revive_lane`.
        """
        self._dead_lanes.add(shard_id)
        lane = self._lanes.get(shard_id)
        if lane is not None:
            lane.finishes.clear()
        self.executor.drop_lane(shard_id)

    def revive_lane(self, shard_id: str) -> None:
        """Bring a failed lane back (failover restored its shard)."""
        self._dead_lanes.discard(shard_id)
        self._lanes.setdefault(shard_id, _LaneState())

    def lane_alive(self, shard_id: str) -> bool:
        return shard_id not in self._dead_lanes

    # ------------------------------------------------------------------
    # Queue-depth signals
    # ------------------------------------------------------------------
    def _prune(self, lane: _LaneState, now: float) -> None:
        while lane.finishes and lane.finishes[0] <= now:
            lane.finishes.popleft()

    def queue_depth(self, shard_id: str, now: float) -> int:
        """Unfinished micro-batches occupying the shard's lane.

        Queries must follow virtual time monotonically: finished batches
        are pruned as ``now`` advances (that pruning is what bounds the
        lane model's memory), so a query at an earlier ``now`` than a
        previous one undercounts.
        """
        lane = self._lanes.get(shard_id)
        if lane is None:
            return 0
        if self._virtual:
            self._prune(lane, now)
            return len(lane.finishes)
        return self.executor.pending(shard_id)

    def max_queue_depth(self, now: float) -> int:
        if not self._lanes:
            return 0
        return max(self.queue_depth(shard_id, now) for shard_id in self._lanes)

    def backlog_s(self, shard_id: str, now: float) -> float:
        """Seconds of unfinished work in the shard's lane.

        Virtual mode reads the lane's modeled completion times exactly;
        threads mode estimates ``pending × mean observed service time``
        (the pending batches' own sizes are unknown until they run), which
        is 0.0 until the first batch has been measured.
        """
        if self._virtual:
            lane = self._lanes.get(shard_id)
            if lane is None:
                return 0.0
            return max(0.0, lane.busy_until(now) - now)
        pending = self.executor.pending(shard_id)
        with self._telemetry_lock:
            return pending * self.estimator.mean_service_s()

    def recent_shed_s(
        self, shard_id: str, now: float, window_s: float = 60.0
    ) -> float:
        """Seconds of service the lane shed in the trailing window.

        Each capacity rejection is priced at the cost model's service
        time (the estimator's observed mean without one), so a lane that
        recently turned work away scores as loaded even after its queue
        drained — the router's "recent shed rate" signal.
        """
        lane = self._lanes.get(shard_id)
        if lane is None or not lane.rejects:
            return 0.0
        total = 0.0
        with self._telemetry_lock:
            fallback_service_s = self.estimator.mean_service_s()
        for shed_time, batch_size in lane.rejects:
            if now - shed_time > window_s:
                continue
            if self.cost_model is not None:
                total += self.cost_model.service_time(batch_size)
            else:
                total += fallback_service_s
        return total

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    # hot-path
    def submit(
        self,
        shard_id: str,
        batch_size: int,
        job: Callable[[], object],
        now: float,
    ) -> BatchTicket | None:
        """Queue one micro-batch on its shard's lane; None when shed.

        A full lane rejects the whole batch — the caller already removed
        it from the micro-batcher, so rejection here is a deliberate,
        counted drop (queue-pressure load shedding), mirrored to the
        autoscaler through the rejection counters.
        """
        if shard_id in self._dead_lanes:
            # A dead lane sheds everything: the batch is counted like a
            # capacity drop so loss accounting stays honest during the
            # crash-to-failover window.
            self._rejected_batches.increment()
            self._rejected_results.increment(batch_size)
            if self._journal is not None:
                self._journal.lane_shed(now, shard_id, batch_size, 0)
            return None
        lane = self._lanes.setdefault(shard_id, _LaneState())
        depth = self.queue_depth(shard_id, now)
        if depth >= self.spec.queue_capacity:
            self._rejected_batches.increment()
            self._rejected_results.increment(batch_size)
            lane.rejects.append((now, batch_size))
            if self._journal is not None:
                self._journal.lane_shed(now, shard_id, batch_size, depth)
            return None
        self._depth_summary.observe(depth)

        ticket = BatchTicket()
        if self._virtual:
            service = (
                self.cost_model.service_time(batch_size)
                if self.cost_model is not None
                else 0.0
            )
            lane.finishes.append(max(now, lane.busy_until(now)) + service)
            self._batches.increment()
            # Modeled service time is telemetry, but NOT estimator food:
            # feeding the cost model's own output back would make the
            # "fitted" model a circular echo of the assumed one.  Only
            # the threads executor measures real wall-clock service.
            self._service_summary.observe(service)
            self.executor.submit(shard_id, job, ticket)
            return ticket

        def timed_job() -> object:
            started = time.perf_counter()
            try:
                return job()
            finally:
                elapsed = time.perf_counter() - started
                with self._telemetry_lock:
                    self._batches.increment()
                    self._service_summary.observe(elapsed)
                    self.estimator.observe(batch_size, elapsed)

        self.executor.submit(shard_id, timed_job, ticket)
        return ticket

    # ------------------------------------------------------------------
    # Quiescence
    # ------------------------------------------------------------------
    def drain(self, timeout: float | None = None) -> None:
        """Block until every lane is idle (threaded); inline mode is a no-op.

        Membership changes and shard synchronization mutate shard models,
        so the gateway quiesces the runtime first — a lane job running
        concurrently with a parameter broadcast would race it.
        """
        self.executor.drain(timeout)

    def shutdown(self) -> None:
        self.executor.shutdown()

    @property
    def rejected_results(self) -> int:
        return self._rejected_results.value

    @property
    def rejected_batches(self) -> int:
        return self._rejected_batches.value
