"""Runtime telemetry helpers: fitting observed service times.

The gateway's :class:`~repro.gateway.gateway.AggregationCostModel` is an
*assumed* affine cost ``per_flush_s + per_result_s * B``.  The runtime
observes the real thing — one ``(batch_size, service_seconds)`` sample per
executed micro-batch — and this estimator closes the loop: a least-squares
fit of the same affine form, exportable as a fresh cost model so capacity
planning (and the virtual-time benchmarks) can use measured coefficients
instead of guessed ones.
"""

from __future__ import annotations

__all__ = ["ServiceTimeEstimator"]


class ServiceTimeEstimator:
    """Online least-squares fit of ``service ≈ per_flush + per_result·B``.

    Keeps only running sums (O(1) memory for week-long runs).  The fit is
    the ordinary least squares solution over every observation; with fewer
    than two distinct batch sizes the slope is unidentifiable and only the
    mean service time is reported (as ``per_flush_s`` with zero slope).
    """

    def __init__(self) -> None:
        self.count = 0
        self._sum_b = 0.0
        self._sum_bb = 0.0
        self._sum_s = 0.0
        self._sum_bs = 0.0
        self._min_b: float | None = None
        self._max_b: float | None = None

    def observe(self, batch_size: int, service_s: float) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if service_s < 0:
            raise ValueError("service_s must be non-negative")
        b = float(batch_size)
        self.count += 1
        self._sum_b += b
        self._sum_bb += b * b
        self._sum_s += service_s
        self._sum_bs += b * service_s
        self._min_b = b if self._min_b is None else min(self._min_b, b)
        self._max_b = b if self._max_b is None else max(self._max_b, b)

    def mean_service_s(self) -> float:
        """Mean observed per-batch service time (0.0 with no data)."""
        if self.count == 0:
            return 0.0
        return self._sum_s / self.count

    def coefficients(self) -> tuple[float, float] | None:
        """``(per_flush_s, per_result_s)`` of the fit; None with no data.

        Coefficients are clamped to be non-negative: a negative intercept
        or slope (possible under noise) would make a nonsensical cost
        model, and the clamped fit stays the best non-negative affine
        approximation for the observed range.
        """
        if self.count == 0:
            return None
        mean_b = self._sum_b / self.count
        mean_s = self._sum_s / self.count
        variance = self._sum_bb / self.count - mean_b * mean_b
        if self._min_b == self._max_b or variance <= 0:
            return max(0.0, mean_s), 0.0
        covariance = self._sum_bs / self.count - mean_b * mean_s
        slope = covariance / variance
        intercept = mean_s - slope * mean_b
        return max(0.0, intercept), max(0.0, slope)

    def fitted_cost_model(self):
        """The fit as an :class:`AggregationCostModel`; None with no data."""
        from repro.gateway.gateway import AggregationCostModel

        fit = self.coefficients()
        if fit is None:
            return None
        per_flush_s, per_result_s = fit
        return AggregationCostModel(
            per_flush_s=per_flush_s, per_result_s=per_result_s
        )
