"""Execution substrates for the per-shard worker lanes.

Both executors expose the same contract — ``submit(lane_id, job, ticket)``
runs ``job`` with every job of one lane strictly serialized — so the
runtime above them is substrate-agnostic:

* :class:`VirtualLaneExecutor` runs the job inline, in submission order.
  On a discrete-event clock there is exactly one caller and time only
  advances between events, so inline execution *is* the semantics of a
  single dedicated worker — and it is deterministic: the same submission
  sequence produces bit-identical state to the synchronous path.
* :class:`ThreadLaneExecutor` shares a ``ThreadPoolExecutor`` across
  lanes, serializing each lane with a pending deque and an active flag:
  any free pool thread may drain any lane, but never two threads the same
  lane, so shard state needs no locking of its own.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable
from concurrent.futures import Future, ThreadPoolExecutor

__all__ = ["BatchTicket", "VirtualLaneExecutor", "ThreadLaneExecutor"]


class BatchTicket(Future):
    """Future of one submitted micro-batch (resolved with ``updated``).

    A plain :class:`concurrent.futures.Future`: virtual-mode tickets
    resolve before ``submit`` returns, threaded tickets when the lane's
    worker finishes the job.  ``result`` re-raises the job's exception.
    """


class VirtualLaneExecutor:
    """Deterministic inline execution on the discrete-event clock."""

    def submit(
        self, lane_id: str, job: Callable[[], object], ticket: BatchTicket
    ) -> None:
        try:
            value = job()
        except BaseException as error:
            ticket.set_exception(error)
            raise
        ticket.set_result(value)

    def drain(self, timeout: float | None = None) -> None:
        """Nothing pends: inline jobs completed before submit returned."""

    def drop_lane(self, lane_id: str) -> None:
        """No per-lane state to discard."""

    def shutdown(self) -> None:
        """Nothing to tear down."""


class _Lane:
    """One shard's serialized job stream inside the shared pool."""

    def __init__(self) -> None:
        self.pending: deque[tuple[Callable[[], object], BatchTicket]] = deque()
        self.active = False


class ThreadLaneExecutor:
    """Shared thread pool with strict per-lane serialization."""

    def __init__(self, workers: int = 2) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard-lane"
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        # ``_idle`` wraps ``_lock`` — holding either is holding the same
        # mutex, so both names satisfy the guard.
        self._lanes: dict[str, _Lane] = {}  # guarded-by: _lock, _idle
        self._errors: list[BaseException] = []  # guarded-by: _lock, _idle

    def submit(
        self, lane_id: str, job: Callable[[], object], ticket: BatchTicket
    ) -> None:
        with self._lock:
            lane = self._lanes.setdefault(lane_id, _Lane())
            lane.pending.append((job, ticket))
            if not lane.active:
                lane.active = True
                self._pool.submit(self._drain_lane, lane_id, lane)

    def _drain_lane(self, lane_id: str, lane: _Lane) -> None:
        while True:
            with self._lock:
                if not lane.pending:
                    lane.active = False
                    self._idle.notify_all()
                    return
                job, ticket = lane.pending.popleft()
            try:
                value = job()
            except BaseException as error:  # noqa: BLE001 — surfaced on drain
                with self._lock:
                    self._errors.append(error)
                ticket.set_exception(error)
            else:
                ticket.set_result(value)

    def pending(self, lane_id: str) -> int:
        with self._lock:
            lane = self._lanes.get(lane_id)
            if lane is None:
                return 0
            return len(lane.pending) + (1 if lane.active else 0)

    def drain(self, timeout: float | None = None) -> None:
        """Block until every lane is idle; re-raise accumulated job errors.

        One failure re-raises as itself, several as an ``ExceptionGroup``
        (none may be silently dropped).  Errors are consumed by the drain
        that reports them — a transient batch failure surfaces once and
        does not poison every later synchronize/membership/finalize drain
        of a healthy tier.
        """
        with self._idle:
            settled = self._idle.wait_for(
                lambda: all(
                    not lane.active and not lane.pending
                    for lane in self._lanes.values()
                ),
                timeout=timeout,
            )
            errors = list(self._errors)
            if settled:
                self._errors.clear()
        if not settled:
            raise TimeoutError("worker lanes did not drain within timeout")
        if len(errors) == 1:
            raise errors[0]
        if errors:
            raise ExceptionGroup("worker lane job failures", errors)

    def drop_lane(self, lane_id: str) -> None:
        """Forget an idle lane (callers drain before membership changes)."""
        with self._lock:
            lane = self._lanes.get(lane_id)
            if lane is not None and (lane.active or lane.pending):
                raise RuntimeError(f"cannot drop busy lane {lane_id!r}")
            self._lanes.pop(lane_id, None)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)
