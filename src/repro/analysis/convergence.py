"""Convergence-curve metrics for the Figs. 8-11 comparisons.

The paper's headline algorithmic claim — "AdaSGD learns 18.4 % faster than
DynSGD" — is a statement about *steps to a target accuracy*.  This module
computes that metric (with interpolation, so the answer does not quantize to
the evaluation grid), the area-under-curve summary, and the relative speedup
between two curves.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interpolated_steps_to_target",
    "accuracy_auc",
    "speedup_percent",
    "is_diverged",
]


def _validate_curve(steps: np.ndarray, accuracy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    steps = np.asarray(steps, dtype=np.float64).reshape(-1)
    accuracy = np.asarray(accuracy, dtype=np.float64).reshape(-1)
    if steps.size != accuracy.size:
        raise ValueError("steps and accuracy differ in length")
    if steps.size == 0:
        raise ValueError("curve is empty")
    if (np.diff(steps) <= 0).any():
        raise ValueError("steps must be strictly increasing")
    return steps, accuracy


def interpolated_steps_to_target(
    steps: np.ndarray, accuracy: np.ndarray, target: float
) -> float | None:
    """First (fractional) step at which the curve crosses ``target``.

    Linear interpolation between the straddling evaluation points; None when
    the curve never reaches the target.  A curve whose very first point is
    already above target returns that first step (the crossing happened
    somewhere we did not observe).
    """
    steps, accuracy = _validate_curve(steps, accuracy)
    above = accuracy >= target
    if not above.any():
        return None
    first = int(np.argmax(above))
    if first == 0:
        return float(steps[0])
    x0, x1 = steps[first - 1], steps[first]
    y0, y1 = accuracy[first - 1], accuracy[first]
    if y1 == y0:  # vertical tie; cross at the later grid point
        return float(x1)
    return float(x0 + (target - y0) * (x1 - x0) / (y1 - y0))


def accuracy_auc(steps: np.ndarray, accuracy: np.ndarray) -> float:
    """Normalized area under the accuracy curve in [0, 1].

    Trapezoidal integral divided by the step span: 1.0 means perfect
    accuracy from the first evaluation on, 0.0 means flat zero.  Robust
    single-number summary when two curves cross.
    """
    steps, accuracy = _validate_curve(steps, accuracy)
    if steps.size == 1:
        return float(accuracy[0])
    span = steps[-1] - steps[0]
    return float(np.trapezoid(accuracy, steps) / span)


def speedup_percent(
    steps_baseline: float | None, steps_candidate: float | None
) -> float | None:
    """How much faster the candidate reached the target, as a percentage.

    Matches the paper's phrasing: "AdaSGD reaches 80 % accuracy 18.4 %
    faster than DynSGD" = 100 · (baseline − candidate) / baseline.
    None when either curve never got there.
    """
    if steps_baseline is None or steps_candidate is None:
        return None
    if steps_baseline <= 0:
        raise ValueError("steps_baseline must be positive")
    return 100.0 * (steps_baseline - steps_candidate) / steps_baseline


def is_diverged(
    accuracy: np.ndarray, chance_level: float, window: int = 3, margin: float = 0.05
) -> bool:
    """Did training fail? True when the last ``window`` evaluations all sit
    within ``margin`` of chance (the paper's "FedAvg diverges" criterion)."""
    accuracy = np.asarray(accuracy, dtype=np.float64).reshape(-1)
    if accuracy.size == 0:
        raise ValueError("curve is empty")
    if not 0.0 <= chance_level <= 1.0:
        raise ValueError("chance_level must be in [0, 1]")
    if window <= 0:
        raise ValueError("window must be positive")
    tail = accuracy[-window:]
    return bool((tail <= chance_level + margin).all())
