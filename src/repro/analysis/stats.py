"""Distribution statistics used by the evaluation harness.

The paper reports its results as CDFs of deviations (Figs. 12-13), staleness
histograms (Fig. 7) and percentile summaries (§3.1 energy).  This module
holds those estimators so benches, examples and EXPERIMENTS.md all compute
them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Ecdf", "PercentileSummary", "summarize", "gaussian_tail_split"]


class Ecdf:
    """Empirical cumulative distribution function of a sample."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            raise ValueError("Ecdf needs at least one value")
        if not np.isfinite(values).all():
            raise ValueError("Ecdf values must be finite")
        self._sorted = np.sort(values)

    @property
    def n(self) -> int:
        return self._sorted.size

    def __call__(self, x: float) -> float:
        """P(X ≤ x) under the empirical distribution."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` ∈ [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(self._sorted, q))

    def support(self) -> tuple[float, float]:
        """(min, max) of the sample."""
        return float(self._sorted[0]), float(self._sorted[-1])

    def curve(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays for plotting/reporting the full CDF."""
        if points < 2:
            raise ValueError("points must be at least 2")
        xs = np.linspace(self._sorted[0], self._sorted[-1], points)
        ys = np.searchsorted(self._sorted, xs, side="right") / self.n
        return xs, ys


@dataclass(frozen=True)
class PercentileSummary:
    """The five-number-style summary the paper quotes (§3.1 energy)."""

    mean: float
    median: float
    p90: float
    p99: float
    maximum: float
    n: int

    def row(self, unit: str = "") -> str:
        """One formatted report line."""
        suffix = f" {unit}" if unit else ""
        return (
            f"avg {self.mean:.4g}{suffix} / med {self.median:.4g}{suffix} / "
            f"p90 {self.p90:.4g}{suffix} / p99 {self.p99:.4g}{suffix} / "
            f"max {self.maximum:.4g}{suffix} (n={self.n})"
        )


def summarize(values: np.ndarray) -> PercentileSummary:
    """Percentile summary of a sample."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if not np.isfinite(values).all():
        raise ValueError("summary values must be finite")
    return PercentileSummary(
        mean=float(values.mean()),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        p99=float(np.percentile(values, 99)),
        maximum=float(values.max()),
        n=values.size,
    )


def gaussian_tail_split(
    values: np.ndarray, tail_z: float = 3.0
) -> tuple[np.ndarray, np.ndarray]:
    """Split a sample into its Gaussian body and its long tail (Fig. 7).

    The paper observes staleness follows "a Gaussian distribution with a
    long tail"; the split point is ``median + tail_z · (robust σ)`` where
    the robust σ is estimated from the interquartile range (IQR / 1.349),
    so extreme tail mass cannot inflate its own threshold.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot split an empty sample")
    if tail_z <= 0:
        raise ValueError("tail_z must be positive")
    q25, q75 = np.percentile(values, [25, 75])
    robust_sigma = (q75 - q25) / 1.349
    cut = float(np.median(values) + tail_z * robust_sigma)
    return values[values <= cut], values[values > cut]
