"""Plain-text charts for terminal reports.

The benchmark harness prints a "paper reproduction report"; these helpers
render small ASCII sparklines, horizontal bars and CDF tables so the shape
of each figure is visible directly in the pytest output without any plotting
dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sparkline", "bar_chart", "cdf_table", "curve_table"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, low: float | None = None, high: float | None = None) -> str:
    """One-line unicode sparkline of a series.

    ``low``/``high`` pin the scale (defaults to the series range); a flat
    series renders at the middle level.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("sparkline needs at least one value")
    lo = float(values.min()) if low is None else float(low)
    hi = float(values.max()) if high is None else float(high)
    if hi < lo:
        raise ValueError("high must be >= low")
    if hi == lo:
        return _SPARK_LEVELS[3] * values.size
    scaled = (np.clip(values, lo, hi) - lo) / (hi - lo)
    indices = np.minimum((scaled * len(_SPARK_LEVELS)).astype(int), len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[i] for i in indices)


def bar_chart(
    labels: list[str], values: np.ndarray, width: int = 40, unit: str = ""
) -> str:
    """Horizontal bar chart; one row per label, scaled to the max value."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if len(labels) != values.size:
        raise ValueError("labels and values differ in length")
    if values.size == 0:
        raise ValueError("bar_chart needs at least one row")
    if (values < 0).any():
        raise ValueError("bar_chart values must be non-negative")
    if width <= 0:
        raise ValueError("width must be positive")
    peak = values.max()
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = 0 if peak == 0 else int(round(width * value / peak))
        suffix = f" {value:.4g}{(' ' + unit) if unit else ''}"
        lines.append(f"{label:<{label_width}} |{'█' * filled}{suffix}")
    return "\n".join(lines)


def cdf_table(
    values: np.ndarray, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99), unit: str = ""
) -> str:
    """Compact quantile table of a sample (the Figs. 12-13 report format)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cdf_table needs at least one value")
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantiles must be in [0, 1]")
    suffix = f" {unit}" if unit else ""
    parts = [f"p{int(q * 100)}={np.quantile(values, q):.4g}{suffix}" for q in quantiles]
    return f"n={values.size}  " + "  ".join(parts)


def curve_table(
    steps: np.ndarray, accuracy: np.ndarray, name: str, spark_width: int = 30
) -> str:
    """One labelled report row: final value + sparkline of the trajectory."""
    steps = np.asarray(steps).reshape(-1)
    accuracy = np.asarray(accuracy, dtype=np.float64).reshape(-1)
    if steps.size != accuracy.size or steps.size == 0:
        raise ValueError("steps/accuracy must be equal-length and non-empty")
    if accuracy.size > spark_width:
        # Downsample evenly so the sparkline fits the requested width.
        pick = np.linspace(0, accuracy.size - 1, spark_width).astype(int)
        spark_values = accuracy[pick]
    else:
        spark_values = accuracy
    return (
        f"{name}  final={accuracy[-1]:.3f} @ step {int(steps[-1])}  "
        f"{sparkline(spark_values, low=0.0, high=1.0)}"
    )
