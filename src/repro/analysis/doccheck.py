"""Markdown link and anchor checker for the ``docs/`` tier.

``python -m repro.analysis.doccheck README.md docs`` walks the given
files/directories, extracts every relative markdown link, and verifies
that the target file exists and — when the link carries a ``#anchor`` —
that the target contains a heading whose GitHub-style slug matches.
External (``http``/``https``/``mailto``) links are ignored: the point is
that *intra-repo* cross-references (README → docs, docs → source, spec
section anchors) cannot rot, not to probe the network from CI.

Exit status is the number of broken links (0 = clean), so the CI step
is just the command itself.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Finding", "check_paths", "heading_slugs", "markdown_links", "main"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


@dataclass(frozen=True)
class Finding:
    """One broken link: where it is and why it is broken."""

    source: Path
    line: int
    target: str
    problem: str

    def __str__(self) -> str:
        return f"{self.source}:{self.line}: {self.target} — {self.problem}"


def _strip_fences(text: str) -> list[str]:
    """Lines of ``text`` with fenced code blocks blanked (not removed:
    line numbers must stay stable for findings)."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, drop punctuation,
    spaces to hyphens (duplicate handling is done by the caller)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # link text only
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    """All valid anchor slugs of ``path``, including duplicate suffixes."""
    counts: dict[str, int] = {}
    slugs: set[str] = set()
    for line in _strip_fences(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
        counts[slug] = seen + 1
    return slugs


def markdown_links(path: Path) -> list[tuple[int, str]]:
    """Every relative link target in ``path`` with its 1-based line."""
    links: list[tuple[int, str]] = []
    for lineno, line in enumerate(_strip_fences(path.read_text(encoding="utf-8")), 1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            links.append((lineno, target))
    return links


def _check_file(path: Path) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, target in markdown_links(path):
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                findings.append(
                    Finding(path, lineno, target, "target file does not exist")
                )
                continue
        else:
            resolved = path.resolve()
        if anchor:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue  # anchors into source files are viewer-specific
            if anchor not in heading_slugs(resolved):
                findings.append(
                    Finding(path, lineno, target, "no heading with this anchor")
                )
    return findings


def check_paths(paths: list[Path]) -> list[Finding]:
    """Check every markdown file in ``paths`` (files or directories)."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    findings: list[Finding] = []
    for markdown in files:
        findings.extend(_check_file(markdown))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro.analysis.doccheck FILE_OR_DIR...")
        return 2
    findings = check_paths([Path(a) for a in args])
    for finding in findings:
        print(finding)
    checked = ", ".join(args)
    print(f"doccheck: {len(findings)} broken link(s) in {checked}")
    return min(len(findings), 125)


if __name__ == "__main__":
    raise SystemExit(main())
