"""``python -m repro.analysis`` — the project-invariant linter."""

import sys

from repro.analysis.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
