"""Clock discipline (RPR0xx): virtual-clock code never reads the wall.

The determinism guarantees (bit-identical virtual-clock runs, PR 4/6/7)
hold only if simulation-capable code derives every timestamp from the
clock value handed to it — ``now`` arguments, ``server.clock``, the
discrete-event loop — never from the host.  These rules ban wall-clock
*timestamp* reads and real sleeps outside the allowlisted wall-clock
modules (``LintConfig.wall_clock_modules`` or a ``# repro: wall-clock``
module pragma).

``time.perf_counter`` is deliberately NOT banned: it measures durations
(service time, CPU phases) and is meaningless as a timestamp, so it
cannot leak wall time into virtual-clock state.  What it measures is
still nondeterministic — keeping it out of *state* is the lock and
hot-path families' concern, not this one's.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.framework import (
    Finding,
    LintConfig,
    Rule,
    SourceModule,
    register,
    resolve_call,
)

__all__ = ["WallClockRule", "SleepRule"]

#: Canonical call targets that read a wall-clock timestamp.
WALL_CLOCK_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

SLEEPS = frozenset({"time.sleep"})


def _scan_calls(
    rule: Rule,
    module: SourceModule,
    config: LintConfig,
    banned: frozenset[str],
    message: str,
) -> list[Finding]:
    if config.module_allows_wall_clock(module):
        return []
    findings = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            target = resolve_call(module, node)
            if target in banned:
                findings.append(
                    rule.finding(module, node, message.format(target=target))
                )
    return findings


@register
class WallClockRule(Rule):
    code = "RPR001"
    summary = (
        "wall-clock timestamp read outside an allowlisted wall-clock module"
    )

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        return _scan_calls(
            self,
            module,
            config,
            WALL_CLOCK_READS,
            "wall-clock read `{target}()` in virtual-clock-capable code; "
            "take the clock value as an argument (or allowlist the module / "
            "add `# repro: wall-clock`)",
        )


@register
class SleepRule(Rule):
    code = "RPR002"
    summary = "real sleep outside an allowlisted wall-clock module"

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        return _scan_calls(
            self,
            module,
            config,
            SLEEPS,
            "`{target}()` blocks the host thread; virtual-clock code "
            "advances time through the event loop, never by sleeping",
        )
