"""Lock discipline (RPR1xx): annotated shared state only moves under its lock.

Threaded modules (runtime executors, observability rings, the durability
saver, gateway shard maps) declare which instance attributes are shared
across threads and which lock guards them:

* inline, on the attribute's assignment::

      self._events = deque()  # guarded-by: _lock

  Several names (``# guarded-by: _lock, _idle``) mean the locks alias
  one underlying mutex (a ``Condition`` built over the ``Lock``) — any
  of them satisfies the rule.

* or in a module manifest, for classes whose ``__init__`` is generated::

      GUARDED_BY = {"EventJournal._events": "_lock"}

Every later read or write of a guarded attribute must then sit inside a
``with self.<lock>:`` block (lexically — including nested functions), or
inside a method annotated ``# holds-lock: <lock>`` (a helper documented
as called with the lock held).  ``__init__`` is exempt: the object is
not yet shared while it is being built.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.framework import (
    Finding,
    LintConfig,
    Rule,
    SourceModule,
    dotted_name,
    register,
)

__all__ = ["GuardedAttributeRule", "UnknownGuardLockRule"]

_GUARDED_BY = re.compile(r"#.*guarded-by:\s*(?P<locks>[A-Za-z0-9_,\s]+)")
_HOLDS_LOCK = re.compile(r"#.*holds-lock:\s*(?P<locks>[A-Za-z0-9_,\s]+)")

#: Methods whose body runs before/after the object is shared.
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__init_subclass__"})


def _parse_locks(raw: str) -> frozenset[str]:
    return frozenset(name.strip() for name in raw.split(",") if name.strip())


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.attr``; else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _manifest(module: SourceModule) -> dict[str, frozenset[str]]:
    """Module-level ``GUARDED_BY = {"Class.attr": "_lock"}`` entries."""
    entries: dict[str, frozenset[str]] = {}
    for node in module.tree.body:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "GUARDED_BY"
            and isinstance(node.value, ast.Dict)
        ):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                entries[str(key.value)] = _parse_locks(str(value.value))
    return entries


class _ClassAudit(ast.NodeVisitor):
    """Walk one class body tracking which guard locks are lexically held."""

    def __init__(
        self,
        rule: Rule,
        module: SourceModule,
        guarded: dict[str, frozenset[str]],
    ) -> None:
        self.rule = rule
        self.module = module
        self.guarded = guarded
        self.held: list[frozenset[str]] = []
        self.findings: list[Finding] = []

    def _currently_held(self) -> frozenset[str]:
        merged: set[str] = set()
        for locks in self.held:
            merged |= locks
        return frozenset(merged)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name in _EXEMPT_METHODS and not self.held:
            return
        comment = self.module.comment_on_or_above(node.lineno)
        holds = _HOLDS_LOCK.search(comment)
        pushed = False
        if holds:
            self.held.append(_parse_locks(holds.group("locks")))
            pushed = True
        self.generic_visit(node)
        if pushed:
            self.held.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Nested classes get their own audit pass from the rule driver.
        return

    def visit_With(self, node: ast.With) -> None:
        acquired: set[str] = set()
        for item in node.items:
            # The context expression itself runs unguarded.
            self.visit(item.context_expr)
            attr = _self_attr(item.context_expr)
            if attr is not None:
                acquired.add(attr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held.append(frozenset(acquired))
        for statement in node.body:
            self.visit(statement)
        self.held.pop()

    visit_AsyncWith = visit_With

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and attr in self.guarded:
            required = self.guarded[attr]
            if not (required & self._currently_held()):
                access = (
                    "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                )
                lock_names = " or ".join(sorted(required))
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"{access} of `self.{attr}` (guarded-by {lock_names}) "
                        f"outside `with self.{lock_names.split(' or ')[0]}:`; "
                        "acquire the lock or annotate the helper "
                        f"`# holds-lock: {sorted(required)[0]}`",
                    )
                )
        self.generic_visit(node)


def _class_guard_map(
    module: SourceModule,
    cls: ast.ClassDef,
    manifest: dict[str, frozenset[str]],
) -> tuple[dict[str, frozenset[str]], dict[str, int], set[str]]:
    """(attr -> locks, annotation lines, attrs assigned anywhere in class)."""
    guarded: dict[str, frozenset[str]] = {}
    annotation_lines: dict[str, int] = {}
    assigned: set[str] = set()
    for node in ast.walk(cls):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            assigned.add(attr)
            comment = module.comments.get(node.lineno, "")
            match = _GUARDED_BY.search(comment)
            if match:
                locks = _parse_locks(match.group("locks"))
                guarded[attr] = guarded.get(attr, frozenset()) | locks
                annotation_lines.setdefault(attr, node.lineno)
    for key, locks in manifest.items():
        owner, _, attr = key.rpartition(".")
        if owner in ("", cls.name):
            guarded[attr] = guarded.get(attr, frozenset()) | locks
            annotation_lines.setdefault(attr, cls.lineno)
    return guarded, annotation_lines, assigned


@register
class GuardedAttributeRule(Rule):
    code = "RPR101"
    summary = "guarded-by attribute accessed outside its `with <lock>` block"

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        manifest = _manifest(module)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded, _, _ = _class_guard_map(module, node, manifest)
            if not guarded:
                continue
            audit = _ClassAudit(self, module, guarded)
            for statement in node.body:
                audit.visit(statement)
            findings.extend(audit.findings)
        return findings


@register
class UnknownGuardLockRule(Rule):
    code = "RPR102"
    summary = "guarded-by names a lock the class never assigns"

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        manifest = _manifest(module)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded, lines, assigned = _class_guard_map(module, node, manifest)
            for attr, locks in sorted(guarded.items()):
                missing = sorted(lock for lock in locks if lock not in assigned)
                if missing:
                    findings.append(
                        Finding(
                            file=module.path,
                            rule=self.code,
                            line=lines.get(attr, node.lineno),
                            col=node.col_offset,
                            symbol=module.symbol_for(node),
                            message=(
                                f"`self.{attr}` declares guarded-by "
                                f"{', '.join(missing)} but {node.name} never "
                                "assigns that lock; fix the annotation or "
                                "create the lock in __init__"
                            ),
                        )
                    )
        return findings
