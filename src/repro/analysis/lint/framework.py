"""Rule framework for the project-invariant linter.

One parse per file: a :class:`SourceModule` bundles the AST with
everything the rules keep re-deriving — the comment map (via
:mod:`tokenize`, so a ``#`` inside a string never reads as an
annotation), per-line ``# repro: noqa[...]`` suppressions, module-level
``# repro: <pragma>`` markers, import aliasing (``np`` → ``numpy``,
``from time import sleep`` → ``time.sleep``), parent links and enclosing
``Class.method`` symbols for baseline keys.

Rules are small classes registered by module import (:func:`register`);
:func:`analyze_source` runs every registered rule over one module and
applies the suppression filter centrally, so a rule only ever *emits*.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "SourceModule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "dotted_name",
    "register",
    "resolve_call",
    "rule_table",
]

_CODE_PATTERN = re.compile(r"^RPR\d{3}$")

# ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR101]`` — blanket or coded.
_NOQA_PATTERN = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")
# Any other ``# repro: <word>`` comment is a module pragma (wall-clock, ...).
_PRAGMA_PATTERN = re.compile(r"#\s*repro:\s*(?!noqa)(?P<pragma>[a-z][a-z0-9-]*)")

#: Sentinel stored in the noqa map for a blanket (un-coded) suppression.
NOQA_ALL = "ALL"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``symbol`` is the enclosing ``Class.method`` (or function) qualname —
    the baseline matches on (file, rule, symbol), never on line numbers,
    so unrelated edits above a grandfathered finding cannot resurrect it.
    """

    file: str
    rule: str
    line: int
    col: int
    symbol: str
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.file, self.rule, self.symbol)

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "rule": self.rule,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.file}:{self.line}:{self.col}: "
            f"{self.rule} [{self.symbol}] {self.message}"
        )


@dataclass(frozen=True)
class LintConfig:
    """Project policy knobs; the defaults ARE the repo's policy.

    ``wall_clock_modules`` are path suffixes (posix form) allowed to read
    the wall clock: the observability tracer stamps real ``cpu_phases``
    in wall mode, and the CLI reports elapsed run time.  Everything else
    must take a clock value as an argument.  A module can also opt in
    locally with a ``# repro: wall-clock`` comment.
    """

    wall_clock_modules: tuple[str, ...] = (
        # Duration measurement (perf_counter) is allowed everywhere; the
        # entries here may additionally read *wall-clock timestamps*.
        "repro/cli.py",
        "benchmarks/conftest.py",
    )
    select: tuple[str, ...] = ()

    def module_allows_wall_clock(self, module: SourceModule) -> bool:
        if "wall-clock" in module.pragmas:
            return True
        path = module.path.replace("\\", "/")
        return any(path.endswith(suffix) for suffix in self.wall_clock_modules)


DEFAULT_CONFIG = LintConfig()


@dataclass
class SourceModule:
    """One parsed file plus the derived maps every rule shares."""

    path: str
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)
    noqa: dict[int, set[str]] = field(default_factory=dict)
    pragmas: set[str] = field(default_factory=set)
    #: local name -> dotted module path (``np`` -> ``numpy``).
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> dotted origin (``sleep`` -> ``time.sleep``).
    from_imports: dict[str, str] = field(default_factory=dict)
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, text: str) -> SourceModule:
        tree = ast.parse(text, filename=path)
        module = cls(path=path, text=text, tree=tree)
        module._collect_comments()
        module._collect_imports()
        module._link_parents()
        return module

    # ------------------------------------------------------------------
    # Derived maps
    # ------------------------------------------------------------------
    def _collect_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                # Several comments on one line cannot happen; keep last.
                self.comments[line] = token.string
                noqa = _NOQA_PATTERN.search(token.string)
                if noqa:
                    codes = noqa.group("codes")
                    if codes is None:
                        self.noqa[line] = {NOQA_ALL}
                    else:
                        self.noqa[line] = {
                            code.strip()
                            for code in codes.split(",")
                            if code.strip()
                        }
                pragma = _PRAGMA_PATTERN.search(token.string)
                if pragma:
                    self.pragmas.add(pragma.group("pragma"))
        except tokenize.TokenError:
            # A file that parses but does not tokenize cleanly keeps its
            # AST findings; it just loses comment-driven behavior.
            pass

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"

    def _link_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def comment_on_or_above(self, line: int) -> str:
        """The comment on ``line``, else the full-line comment just above."""
        if line in self.comments:
            return self.comments[line]
        above = self.comments.get(line - 1, "")
        # Only a *standalone* comment line above counts as an annotation
        # for the def below — a trailing comment on unrelated code does not.
        if above and self.text.splitlines()[line - 2].lstrip().startswith("#"):
            return above
        return ""

    def symbol_for(self, node: ast.AST) -> str:
        """``Class.method`` / ``function`` qualname enclosing ``node``."""
        parts: list[str] = []
        current: ast.AST | None = node
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(parts)) if parts else "<module>"

    def suppressed(self, code: str, line: int) -> bool:
        codes = self.noqa.get(line)
        if not codes:
            return False
        return NOQA_ALL in codes or code in codes


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call(module: SourceModule, call: ast.Call) -> str | None:
    """Canonical dotted target of a call, imports resolved.

    ``np.random.seed(...)`` resolves to ``numpy.random.seed`` under
    ``import numpy as np``; ``sleep(...)`` to ``time.sleep`` under
    ``from time import sleep``.  Attribute chains rooted in unknown
    locals (``rng.normal()``, ``self.clock.now()``) resolve with their
    local root untouched, so rules matching canonical stdlib/numpy paths
    never fire on instance methods.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    if not rest:
        return module.from_imports.get(name, name)
    if root in module.module_aliases:
        return f"{module.module_aliases[root]}.{rest}"
    if root in module.from_imports:
        return f"{module.from_imports[root]}.{rest}"
    return name


class Rule:
    """One invariant check; subclasses set ``code`` and implement ``run``."""

    code: str = ""
    summary: str = ""

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            file=module.path,
            rule=self.code,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=module.symbol_for(node),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _CODE_PATTERN.match(rule_cls.code):
        raise ValueError(f"rule code {rule_cls.code!r} must match RPRxxx")
    if rule_cls.code in _REGISTRY and not isinstance(
        _REGISTRY[rule_cls.code], rule_cls
    ):
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def all_rules() -> dict[str, Rule]:
    return dict(sorted(_REGISTRY.items()))


def rule_table() -> list[tuple[str, str]]:
    """(code, summary) rows for docs and ``--rules`` output."""
    return [(code, rule.summary) for code, rule in all_rules().items()]


def analyze_source(
    text: str,
    path: str = "<string>",
    config: LintConfig = DEFAULT_CONFIG,
) -> list[Finding]:
    """Run every registered (selected) rule over one source text."""
    module = SourceModule.parse(path, text)
    findings: list[Finding] = []
    for code, rule in all_rules().items():
        if config.select and code not in config.select:
            continue
        for finding in rule.run(module, config):
            if not module.suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return findings


def analyze_file(
    path: Path, root: Path, config: LintConfig = DEFAULT_CONFIG
) -> list[Finding]:
    text = path.read_text(encoding="utf-8")
    try:
        rel = path.resolve().relative_to(root.resolve())
        shown = rel.as_posix()
    except ValueError:
        shown = path.as_posix()
    try:
        return analyze_source(text, shown, config)
    except SyntaxError as error:
        return [
            Finding(
                file=shown,
                rule="RPR000",
                line=error.lineno or 1,
                col=error.offset or 0,
                symbol="<module>",
                message=f"file does not parse: {error.msg}",
            )
        ]


def analyze_paths(
    paths: list[Path], root: Path, config: LintConfig = DEFAULT_CONFIG
) -> list[Finding]:
    """Lint files and directory trees; deterministic order, one parse each."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[Finding] = []
    for file in files:
        findings.extend(analyze_file(file, root, config))
    return findings


def with_select(config: LintConfig, codes: tuple[str, ...]) -> LintConfig:
    return replace(config, select=codes)
