"""Hot-path purity (RPR3xx): marked functions stay allocation- and IO-lean.

The fold path holds two measured bars — vectorized aggregation ~9× over
the legacy loop, WAL hot-path tax ≤5% — and both die by a thousand cuts:
a ``json.dumps`` per record, an fsync per append, a ``np.concatenate``
where the copy-free ``stack_gradients``/arena helpers exist.  Functions
annotated ``# hot-path`` (on the ``def`` line or the standalone comment
line above it) are audited for those cuts; a *deliberate* exception (the
WAL's opt-in fsync) carries an inline ``# repro: noqa[RPR302]`` so the
decision is visible at the call site.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.framework import (
    Finding,
    LintConfig,
    Rule,
    SourceModule,
    dotted_name,
    register,
    resolve_call,
)

__all__ = [
    "HotPathSerializationRule",
    "HotPathBlockingRule",
    "HotPathAllocationRule",
]

_HOT_PATH = re.compile(r"#\s*hot-path\b")

#: Text/object serialization — never on a per-record path.
SERIALIZATION_PREFIXES = ("json.", "pickle.", "marshal.")

#: Blocking IO / logging on the fold path.
BLOCKING_CALLS = frozenset({"os.fsync", "os.fdatasync", "print"})
_LOGGER_NAMES = frozenset({"log", "logger", "logging"})
_LOGGER_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical"}
)

#: Copy-building allocators with repo-native replacements
#: (``stack_gradients`` base detection, preallocated rings/arenas).
ALLOCATING_CALLS = frozenset(
    {
        "numpy.concatenate",
        "numpy.vstack",
        "numpy.hstack",
        "numpy.append",
        "numpy.column_stack",
        "numpy.row_stack",
    }
)


def hot_path_functions(module: SourceModule) -> list[ast.FunctionDef]:
    functions = []
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _HOT_PATH.search(module.comment_on_or_above(node.lineno)):
                functions.append(node)
    return functions


def _is_logging_call(module: SourceModule, call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None or "." not in name:
        return False
    *prefix, method = name.split(".")
    if method not in _LOGGER_METHODS:
        return False
    # ``logging.info``, ``logger.info``, ``self._logger.info`` and the like.
    return any(part.lstrip("_") in _LOGGER_NAMES for part in prefix)


def _audit(
    rule: Rule,
    module: SourceModule,
    matcher,
    message: str,
) -> list[Finding]:
    findings = []
    for function in hot_path_functions(module):
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                target = resolve_call(module, node)
                if matcher(module, node, target):
                    shown = target or "<call>"
                    findings.append(
                        rule.finding(
                            module,
                            node,
                            message.format(target=shown, name=function.name),
                        )
                    )
    return findings


@register
class HotPathSerializationRule(Rule):
    code = "RPR301"
    summary = "serialization (json/pickle) inside a `# hot-path` function"

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        def matcher(module, node, target):
            return target is not None and target.startswith(
                SERIALIZATION_PREFIXES
            )

        return _audit(
            self,
            module,
            matcher,
            "`{target}` serializes per record inside hot-path `{name}`; "
            "move it off-path (background saver, binary framing) or drop "
            "the hot-path marker",
        )


@register
class HotPathBlockingRule(Rule):
    code = "RPR302"
    summary = "blocking IO or logging inside a `# hot-path` function"

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        def matcher(module, node, target):
            if target in BLOCKING_CALLS:
                return True
            return _is_logging_call(module, node)

        return _audit(
            self,
            module,
            matcher,
            "`{target}` blocks inside hot-path `{name}`; hot paths count "
            "and ring-buffer, they never log or force IO inline",
        )


@register
class HotPathAllocationRule(Rule):
    code = "RPR303"
    summary = (
        "copy-building allocation (concatenate/vstack) in a hot-path function"
    )

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        def matcher(module, node, target):
            return target in ALLOCATING_CALLS

        return _audit(
            self,
            module,
            matcher,
            "`{target}` rebuilds its operands inside hot-path `{name}`; use "
            "the copy-free helpers (stack_gradients base detection, "
            "preallocated rings) instead",
        )
