"""CLI driver: ``python -m repro.analysis`` / the ``repro-lint`` script.

Exit codes: 0 — clean (or fully baselined); 1 — new findings beyond the
baseline; 2 — usage error.  ``--format json`` emits a machine-readable
report (uploaded as a CI artifact); the text format prints one
``file:line:col: CODE [symbol] message`` row per finding, new findings
first.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.lint.baseline import Baseline, split_new_findings
from repro.analysis.lint.framework import (
    DEFAULT_CONFIG,
    Finding,
    LintConfig,
    analyze_paths,
    rule_table,
    with_select,
)

__all__ = ["main", "run_lint", "LintResult"]

DEFAULT_PATHS = ("src", "benchmarks")
DEFAULT_BASELINE = "lint-baseline.json"


@dataclass
class LintResult:
    """Everything one lint run produced (the testable runner API)."""

    findings: list[Finding]
    new: list[Finding]
    baselined: list[Finding]
    baseline_total: int

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_dict(self) -> dict[str, object]:
        return {
            "summary": {
                "findings": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "baseline_entries": self.baseline_total,
            },
            "new": [finding.to_dict() for finding in self.new],
            "baselined": [finding.to_dict() for finding in self.baselined],
        }

    def render_text(self) -> str:
        lines = []
        for finding in self.new:
            lines.append(finding.render())
        if self.baselined:
            lines.append(
                f"... plus {len(self.baselined)} baselined finding(s) "
                f"(grandfathered in {DEFAULT_BASELINE})"
            )
        lines.append(
            f"repro-lint: {len(self.new)} new, {len(self.baselined)} "
            f"baselined, {len(self.findings)} total"
        )
        return "\n".join(lines)


def run_lint(
    paths: list[Path],
    root: Path,
    baseline: Baseline | None = None,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintResult:
    """Analyze ``paths`` and split results against ``baseline``."""
    findings = analyze_paths(paths, root, config)
    baseline = baseline or Baseline()
    new, old = split_new_findings(findings, baseline)
    return LintResult(
        findings=findings,
        new=new,
        baselined=old,
        baseline_total=baseline.total,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-invariant linter: clock, lock, RNG and hot-path "
            "discipline for the FLeet reproduction."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the report (in the chosen format) to this file",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline JSON path, relative to --root (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.rules:
        for code, summary in rule_table():
            print(f"{code}  {summary}")
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"repro-lint: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    paths = []
    for raw in args.paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            print(f"repro-lint: path {raw!r} does not exist", file=sys.stderr)
            return 2
        paths.append(path)

    config = DEFAULT_CONFIG
    if args.select:
        codes = tuple(code.strip() for code in args.select.split(",") if code.strip())
        config = with_select(config, codes)

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.update_baseline:
        result = run_lint(paths, root, baseline=None, config=config)
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"repro-lint: baseline updated with {len(result.findings)} "
            f"finding(s) at {baseline_path}"
        )
        return 0

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    result = run_lint(paths, root, baseline=baseline, config=config)

    rendered = (
        json.dumps(result.to_dict(), indent=2)
        if args.fmt == "json"
        else result.render_text()
    )
    try:
        print(rendered)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the exit code (and any
        # --output file) still carries the verdict.
        pass
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
