"""Grandfathered findings: the committed JSON baseline.

A baseline entry matches findings by ``(file, rule, symbol)`` with a
count — never by line number, so edits elsewhere in a file (imports,
docstrings, new methods) cannot shift a grandfathered finding onto a
"new" line and break CI.  The gate then fails only on findings *beyond*
the baseline: new violations, or extra occurrences inside an already
baselined symbol.

``repro-lint --update-baseline`` rewrites the file from the current
findings (sorted, stable), so review diffs show exactly which debts were
added or paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.framework import Finding

__all__ = ["Baseline", "split_new_findings"]

_VERSION = 1


@dataclass
class Baseline:
    """Allowed finding counts keyed by (file, rule, symbol)."""

    entries: dict[tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Read a committed baseline; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {_VERSION})"
            )
        entries: dict[tuple[str, str, str], int] = {}
        for row in payload.get("entries", []):
            key = (str(row["file"]), str(row["rule"]), str(row["symbol"]))
            entries[key] = entries.get(key, 0) + int(row.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> Baseline:
        entries: dict[tuple[str, str, str], int] = {}
        for finding in findings:
            entries[finding.key] = entries.get(finding.key, 0) + 1
        return cls(entries)

    def save(self, path: Path) -> None:
        rows = [
            {"file": file, "rule": rule, "symbol": symbol, "count": count}
            for (file, rule, symbol), count in sorted(self.entries.items())
        ]
        payload = {"version": _VERSION, "entries": rows}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @property
    def total(self) -> int:
        return sum(self.entries.values())


def split_new_findings(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding]]:
    """(new, grandfathered) — the first ``count`` matches per key are old.

    Findings arrive sorted by (file, line); consuming the budget in that
    order keeps the reported "new" finding deterministic when a symbol
    holds both an old and a new occurrence.
    """
    budget = dict(baseline.entries)
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        remaining = budget.get(finding.key, 0)
        if remaining > 0:
            budget[finding.key] = remaining - 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old
