"""Project-invariant linter: the coding disciplines the guarantees rest on.

The repo stakes hard guarantees — bit-identical virtual-clock runs,
thread-safe metrics/journal rings, a background checkpoint saver, a ≤5%
WAL hot-path tax — and every one of them rests on a coding discipline
that nothing used to enforce: one stray ``time.time()`` in a
virtual-clock path, one unlocked mutation of a lane-shared structure, or
one ``json.dumps`` on the fold path silently breaks the guarantee.  This
package checks those disciplines mechanically, as a CI gate next to ruff.

Four rule families (see :mod:`repro.analysis.lint.rules_clock`,
``rules_lock``, ``rules_rng``, ``rules_hotpath``):

=========  ==================================================================
``RPR0xx``  clock discipline — no wall-clock reads/sleeps outside allowlisted
            wall-clock modules; virtual-clock code takes a clock argument
``RPR1xx``  lock discipline — attributes declared ``# guarded-by: <lock>``
            are only touched inside ``with self.<lock>:`` blocks
``RPR2xx``  RNG discipline — no global-state randomness; only seeded
            ``numpy.random.Generator``/``default_rng`` flowing from specs
``RPR3xx``  hot-path purity — ``# hot-path`` functions never serialize,
            fsync, log or allocate via concatenate/vstack
=========  ==================================================================

Run it with ``python -m repro.analysis [paths]`` or the ``repro-lint``
console script; suppress single findings with ``# repro: noqa[RPRxxx]``
and grandfather legacy ones in the committed JSON baseline
(``lint-baseline.json``), matched by (file, rule, symbol) so line drift
never resurrects them.
"""

from repro.analysis.lint.baseline import Baseline, split_new_findings
from repro.analysis.lint.framework import (
    Finding,
    LintConfig,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    register,
    rule_table,
)
from repro.analysis.lint.runner import main, run_lint

# Importing the rule modules registers every rule family with the
# framework registry; the linter is unusable without them.
from repro.analysis.lint import (  # noqa: F401  (import-for-effect)
    rules_clock,
    rules_hotpath,
    rules_lock,
    rules_rng,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "main",
    "register",
    "rule_table",
    "run_lint",
    "split_new_findings",
]
