"""RNG discipline (RPR2xx): only seeded generators flowing from specs.

Reproducibility rides on every random draw coming from a seeded
``numpy.random.Generator`` (``default_rng(seed)``) that a spec or a call
site threads to the consumer.  Global-state randomness — the ``random``
module's functions, ``np.random.seed``/``np.random.rand`` and friends —
draws from an ambient stream any import or reordering can perturb, so a
single call silently breaks run-to-run equality fleet-wide.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.framework import (
    Finding,
    LintConfig,
    Rule,
    SourceModule,
    register,
    resolve_call,
)

__all__ = ["StdlibRandomRule", "NumpyGlobalRandomRule"]

#: ``random.<x>`` constructors that produce an *instance* (seedable,
#: no global state) and so stay legal.
STDLIB_RANDOM_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})

#: ``numpy.random.<x>`` names that construct seeded generator machinery.
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@register
class StdlibRandomRule(Rule):
    code = "RPR201"
    summary = "global-state `random.*` call (use a seeded Generator instead)"

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(module, node)
            if target is None or not target.startswith("random."):
                continue
            if target in STDLIB_RANDOM_ALLOWED:
                continue
            # Only the module's top-level functions are global state;
            # deeper chains (random.Random(0).random()) resolved above.
            if target.count(".") != 1:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"`{target}()` draws from the ambient global stream; "
                    "thread a seeded `numpy.random.Generator` (or a "
                    "`random.Random(seed)` instance) from the spec instead",
                )
            )
        return findings


@register
class NumpyGlobalRandomRule(Rule):
    code = "RPR202"
    summary = (
        "global-state `np.random.*` call (only seeded Generator/default_rng)"
    )

    def run(self, module: SourceModule, config: LintConfig) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(module, node)
            if target is None or not target.startswith("numpy.random."):
                continue
            leaf = target.split(".")[2]
            if leaf in NUMPY_RANDOM_ALLOWED:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"`{target}()` mutates numpy's hidden global RandomState; "
                    "draw from a seeded `numpy.random.default_rng(seed)` "
                    "generator flowing from the spec",
                )
            )
        return findings
