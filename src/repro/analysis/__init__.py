"""Analysis toolkit: distribution stats, convergence metrics, text charts.

The evaluation harness (benchmarks/), the examples and EXPERIMENTS.md all
report through this subpackage, so "steps to 80 %", "p90 SLO deviation" and
"Gaussian body + long tail" mean exactly one thing across the repo.
"""

from repro.analysis.charts import bar_chart, cdf_table, curve_table, sparkline
from repro.analysis.convergence import (
    accuracy_auc,
    interpolated_steps_to_target,
    is_diverged,
    speedup_percent,
)
from repro.analysis.stats import Ecdf, PercentileSummary, gaussian_tail_split, summarize

__all__ = [
    "Ecdf",
    "PercentileSummary",
    "summarize",
    "gaussian_tail_split",
    "interpolated_steps_to_target",
    "accuracy_auc",
    "speedup_percent",
    "is_diverged",
    "sparkline",
    "bar_chart",
    "cdf_table",
    "curve_table",
]
