"""Workload profilers: I-Prof (the paper's) and the MAUI baseline."""

from repro.profiler.coldstart import ColdStartModel, collect_offline_dataset
from repro.profiler.iprof import SLO, IProf, ProfilerDecision, SlopePredictor
from repro.profiler.maui import MauiProfiler
from repro.profiler.passive_aggressive import (
    PassiveAggressiveRegressor,
    epsilon_insensitive_loss,
)

__all__ = [
    "SLO",
    "IProf",
    "ProfilerDecision",
    "SlopePredictor",
    "ColdStartModel",
    "collect_offline_dataset",
    "MauiProfiler",
    "PassiveAggressiveRegressor",
    "epsilon_insensitive_loss",
]
