"""I-Prof: the paper's lightweight workload profiler (§2.2).

Given a device's feature vector x and an SLO, I-Prof predicts the slope
α̂ = xᵀθ of the linear cost law (computation time or energy vs mini-batch
size) and returns the largest admissible workload

    n̂ = max(1, SLO / α̂).

Two predictor stacks exist — one for computation time, one for energy — each
consisting of a shared cold-start OLS model (used for the first request of a
new device model, periodically re-fit) and a per-device-model online
Passive-Aggressive regressor bootstrapped from the cold-start weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiler.coldstart import ColdStartModel
from repro.profiler.passive_aggressive import PassiveAggressiveRegressor

__all__ = ["SLO", "ProfilerDecision", "SlopePredictor", "IProf"]

# Fallback slope when a model predicts a non-positive α (cannot invert the
# cost law); corresponds to a conservatively slow 50 ms/sample device.
_MIN_SLOPE = 1e-6


@dataclass(frozen=True)
class SLO:
    """Service-level objective for one learning task.

    Either bound may be None, meaning "unconstrained".  The paper's defaults:
    3 seconds of computation time, 0.075 % battery drop.
    """

    time_seconds: float | None = 3.0
    energy_percent: float | None = None

    def __post_init__(self) -> None:
        if self.time_seconds is not None and self.time_seconds <= 0:
            raise ValueError("time SLO must be positive")
        if self.energy_percent is not None and self.energy_percent <= 0:
            raise ValueError("energy SLO must be positive")
        if self.time_seconds is None and self.energy_percent is None:
            raise ValueError("an SLO must bound at least one dimension")


@dataclass(frozen=True)
class ProfilerDecision:
    """The profiler's answer to a learning-task request."""

    batch_size: int
    predicted_time_s: float | None
    predicted_energy_percent: float | None
    used_personalized: bool


class SlopePredictor:
    """One predictor stack: cold-start OLS + per-device-model PA models."""

    def __init__(
        self,
        feature_dim: int,
        epsilon: float = 0.1,
        refit_every: int = 50,
    ) -> None:
        self.cold_start = ColdStartModel(feature_dim, refit_every=refit_every)
        self.epsilon = epsilon
        self._personal: dict[str, PassiveAggressiveRegressor] = {}

    def pretrain(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Fit the cold-start model on the offline dataset."""
        self.cold_start.fit(xs, ys)

    def has_personal_model(self, model_name: str) -> bool:
        return model_name in self._personal

    def _floor(self) -> float:
        """Smallest plausible slope: a fraction of the fastest training
        device, so a wild regression output cannot explode the workload."""
        seen = self.cold_start.min_slope_seen
        if seen is None:
            return _MIN_SLOPE
        return max(_MIN_SLOPE, 0.2 * seen)

    def predict(self, model_name: str, x: np.ndarray) -> tuple[float, bool]:
        """Predicted slope and whether a personalized model answered."""
        personal = self._personal.get(model_name)
        if personal is not None:
            return max(self._floor(), personal.predict(x)), True
        return max(self._floor(), self.cold_start.predict(x)), False

    def observe(self, model_name: str, x: np.ndarray, slope: float) -> None:
        """Fold one observed (features, slope) pair into both models.

        The first observation for a device model bootstraps its PA model
        from the current cold-start weights (§2.2).
        """
        if model_name not in self._personal:
            self._personal[model_name] = PassiveAggressiveRegressor(
                self.cold_start.theta, epsilon=self.epsilon
            )
        self._personal[model_name].update(x, slope)
        self.cold_start.append(x, slope)


class IProf:
    """The complete profiler: a time stack and an energy stack.

    Parameters
    ----------
    feature_dim:
        Length of the device feature vector (6 with bias in this repo).
    epsilon_time / epsilon_energy:
        PA sensitivity for each stack.  The paper quotes 0.1 (time) and
        6e-5 (energy) in its own slope units; our slopes are seconds (or
        battery %) per sample, so the equivalent insensitivity bands are
        ~2e-4 s/sample and ~5e-6 %/sample — roughly the measurement-noise
        floor of the simulated devices.
    personalize:
        Disable to ablate the per-device-model PA layer (cold-start only).
    """

    def __init__(
        self,
        feature_dim: int = 6,
        epsilon_time: float = 2e-4,
        epsilon_energy: float = 5e-6,
        refit_every: int = 50,
        personalize: bool = True,
    ) -> None:
        self.time_predictor = SlopePredictor(
            feature_dim, epsilon=epsilon_time, refit_every=refit_every
        )
        self.energy_predictor = SlopePredictor(
            feature_dim, epsilon=epsilon_energy, refit_every=refit_every
        )
        self.personalize = personalize
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Offline pre-training (cold-start bootstrap, §3.3)
    # ------------------------------------------------------------------
    def pretrain_time(self, xs: np.ndarray, ys: np.ndarray) -> None:
        self.time_predictor.pretrain(xs, ys)

    def pretrain_energy(self, xs: np.ndarray, ys: np.ndarray) -> None:
        self.energy_predictor.pretrain(xs, ys)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def recommend(
        self, model_name: str, features: np.ndarray, slo: SLO
    ) -> ProfilerDecision:
        """Largest mini-batch size meeting every bound of the SLO."""
        features = np.asarray(features, dtype=np.float64)
        candidates: list[float] = []
        personalized = False
        time_slope = energy_slope = None

        if slo.time_seconds is not None:
            time_slope, used = self._predict(self.time_predictor, model_name, features)
            personalized = personalized or used
            candidates.append(slo.time_seconds / time_slope)
        if slo.energy_percent is not None:
            energy_slope, used = self._predict(
                self.energy_predictor, model_name, features
            )
            personalized = personalized or used
            candidates.append(slo.energy_percent / energy_slope)

        batch = max(1, int(min(candidates)))
        self.requests_served += 1
        return ProfilerDecision(
            batch_size=batch,
            predicted_time_s=(time_slope * batch) if time_slope is not None else None,
            predicted_energy_percent=(
                energy_slope * batch if energy_slope is not None else None
            ),
            used_personalized=personalized,
        )

    def _predict(
        self, stack: SlopePredictor, model_name: str, x: np.ndarray
    ) -> tuple[float, bool]:
        if not self.personalize:
            return max(stack._floor(), stack.cold_start.predict(x)), False
        return stack.predict(model_name, x)

    # ------------------------------------------------------------------
    # Feedback path
    # ------------------------------------------------------------------
    def report(
        self,
        model_name: str,
        features: np.ndarray,
        batch_size: int,
        computation_time_s: float | None = None,
        energy_percent: float | None = None,
    ) -> None:
        """Update the predictors with a completed task's measurements."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        features = np.asarray(features, dtype=np.float64)
        if not self.personalize:
            if computation_time_s is not None:
                self.time_predictor.cold_start.append(
                    features, computation_time_s / batch_size
                )
            if energy_percent is not None:
                self.energy_predictor.cold_start.append(
                    features, energy_percent / batch_size
                )
            return
        if computation_time_s is not None:
            self.time_predictor.observe(
                model_name, features, computation_time_s / batch_size
            )
        if energy_percent is not None:
            self.energy_predictor.observe(
                model_name, features, energy_percent / batch_size
            )
