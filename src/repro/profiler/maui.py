"""MAUI-style baseline profiler (Cuervo et al., MobiSys 2010; paper §3.3).

The paper adapts MAUI's energy profiler to its setting: a single *global*
linear-regression model through the origin, ``cost = θ₀ · n``, where n is
the mini-batch size (standing in for CPU cycles, which are proportional to n
for a static code path).  There is no device-feature input and no
per-device personalization — that is precisely the deficiency Figures 12
and 13 expose.

We keep the model updated with incremental least squares over all observed
(n, cost) pairs, which is the natural online extension and strictly
charitable to the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.profiler.iprof import SLO, ProfilerDecision

__all__ = ["MauiProfiler"]

_MIN_SLOPE = 1e-6


class _OriginLeastSquares:
    """Running least-squares fit of cost = θ·n through the origin."""

    def __init__(self) -> None:
        self._sum_nn = 0.0
        self._sum_nc = 0.0
        self.theta = 0.0

    def observe(self, n: float, cost: float) -> None:
        self._sum_nn += n * n
        self._sum_nc += n * cost
        if self._sum_nn > 0.0:
            self.theta = self._sum_nc / self._sum_nn

    def predict_slope(self) -> float:
        return max(_MIN_SLOPE, self.theta)


class MauiProfiler:
    """Global slope-only profiler with the same request/report interface as I-Prof."""

    def __init__(self) -> None:
        self._time = _OriginLeastSquares()
        self._energy = _OriginLeastSquares()
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Offline pre-training on the same dataset I-Prof receives
    # ------------------------------------------------------------------
    def pretrain_time(self, batch_sizes: np.ndarray, times: np.ndarray) -> None:
        for n, cost in zip(batch_sizes, times):
            self._time.observe(float(n), float(cost))

    def pretrain_energy(self, batch_sizes: np.ndarray, energies: np.ndarray) -> None:
        for n, cost in zip(batch_sizes, energies):
            self._energy.observe(float(n), float(cost))

    # ------------------------------------------------------------------
    # Request path (features accepted but ignored, by design)
    # ------------------------------------------------------------------
    def recommend(
        self, model_name: str, features: np.ndarray, slo: SLO
    ) -> ProfilerDecision:
        candidates: list[float] = []
        time_slope = energy_slope = None
        if slo.time_seconds is not None:
            time_slope = self._time.predict_slope()
            candidates.append(slo.time_seconds / time_slope)
        if slo.energy_percent is not None:
            energy_slope = self._energy.predict_slope()
            candidates.append(slo.energy_percent / energy_slope)
        batch = max(1, int(min(candidates)))
        self.requests_served += 1
        return ProfilerDecision(
            batch_size=batch,
            predicted_time_s=(time_slope * batch) if time_slope is not None else None,
            predicted_energy_percent=(
                energy_slope * batch if energy_slope is not None else None
            ),
            used_personalized=False,
        )

    # ------------------------------------------------------------------
    # Feedback path
    # ------------------------------------------------------------------
    def report(
        self,
        model_name: str,
        features: np.ndarray,
        batch_size: int,
        computation_time_s: float | None = None,
        energy_percent: float | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if computation_time_s is not None:
            self._time.observe(float(batch_size), float(computation_time_s))
        if energy_percent is not None:
            self._energy.observe(float(batch_size), float(energy_percent))
