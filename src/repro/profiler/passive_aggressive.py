"""Online Passive-Aggressive regression (Crammer et al., JMLR 2006).

I-Prof personalizes its slope predictor per device model with the PA update
the paper quotes in §2.2:

    θ^{k+1} = θ^k + (f^{(k)} / ‖x^{(k)}‖²) · v^{(k)},
    v^{(k)} = sign(α^{(k)} − x^{(k)ᵀ}θ^{(k)}) · x^{(k)},

with the ε-insensitive hinge loss

    f(θ, x, α) = 0                 if |xᵀθ − α| ≤ ε
                 |xᵀθ − α| − ε     otherwise.

ε controls the aggressiveness: smaller ε → larger corrections per sample.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PassiveAggressiveRegressor", "epsilon_insensitive_loss"]


def epsilon_insensitive_loss(
    theta: np.ndarray, x: np.ndarray, alpha: float, epsilon: float
) -> float:
    """The ε-insensitive loss f(θ, x, α) of Equation 2."""
    residual = abs(float(x @ theta) - alpha)
    if residual <= epsilon:
        return 0.0
    return residual - epsilon


class PassiveAggressiveRegressor:
    """PA-I style online regressor on a fixed-length feature vector."""

    def __init__(self, theta: np.ndarray, epsilon: float = 0.1) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.theta = np.asarray(theta, dtype=np.float64).copy()
        self.epsilon = float(epsilon)
        self.updates = 0

    def predict(self, x: np.ndarray) -> float:
        """Predicted slope α̂ = xᵀθ."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.theta.shape:
            raise ValueError(
                f"feature vector of shape {x.shape} does not match θ {self.theta.shape}"
            )
        return float(x @ self.theta)

    def update(self, x: np.ndarray, alpha: float) -> float:
        """One PA step on an observed (features, slope) pair.

        Returns the loss *before* the update (0 means no correction needed).
        """
        x = np.asarray(x, dtype=np.float64)
        loss = epsilon_insensitive_loss(self.theta, x, alpha, self.epsilon)
        if loss == 0.0:
            self.updates += 1
            return 0.0
        norm_sq = float(x @ x)
        if norm_sq == 0.0:
            self.updates += 1
            return loss
        direction = np.sign(alpha - float(x @ self.theta)) * x
        self.theta = self.theta + (loss / norm_sq) * direction
        self.updates += 1
        return loss
