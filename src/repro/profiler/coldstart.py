"""Cold-start slope model: ordinary least squares over device features.

I-Prof's cold-start model is pre-trained offline on (feature-vector, slope)
pairs collected from a set of *training* devices that ramp the mini-batch
size until the computation time reaches twice the SLO (§2.2 and §3.3).  It
serves the first request of every previously unseen device model and is
periodically re-fit as fresh device data is appended.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ColdStartModel", "collect_offline_dataset"]


class ColdStartModel:
    """Ridge-regularized least squares α ≈ xᵀθ with periodic re-fits.

    A light L2 penalty keeps θ stable when device features are collinear
    (total memory and max frequency correlate strongly across phone
    generations); plain OLS would produce large cancelling coefficients
    whose predictions flip sign under small feature jitter.
    """

    def __init__(
        self, feature_dim: int, refit_every: int = 50, ridge: float = 1e-3
    ) -> None:
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if refit_every <= 0:
            raise ValueError("refit_every must be positive")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.feature_dim = feature_dim
        self.refit_every = refit_every
        self.ridge = ridge
        self.theta = np.zeros(feature_dim, dtype=np.float64)
        self._xs: list[np.ndarray] = []
        self._ys: list[float] = []
        self._since_fit = 0
        self.fitted = False
        # Smallest slope seen in training data; used by callers as a sanity
        # floor when inverting the cost law (a negative or near-zero
        # predicted slope would otherwise explode the workload bound).
        self.min_slope_seen: float | None = None

    def _solve(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        gram = xs.T @ xs
        scale = np.trace(gram) / max(1, gram.shape[0])
        reg = self.ridge * max(scale, 1e-12) * np.eye(self.feature_dim)
        return np.linalg.solve(gram + reg, xs.T @ ys)

    def fit(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Fit θ on a full offline dataset."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.ndim != 2 or xs.shape[1] != self.feature_dim:
            raise ValueError(f"xs must be (n, {self.feature_dim})")
        if xs.shape[0] != ys.shape[0]:
            raise ValueError("xs and ys disagree on sample count")
        self.theta = self._solve(xs, ys)
        self._xs = [row.copy() for row in xs]
        self._ys = [float(y) for y in ys]
        positive = ys[ys > 0]
        if positive.size:
            self.min_slope_seen = float(positive.min())
        self._since_fit = 0
        self.fitted = True

    def append(self, x: np.ndarray, y: float) -> None:
        """Add one observation; re-fit every ``refit_every`` appends."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.feature_dim,):
            raise ValueError(f"x must have shape ({self.feature_dim},)")
        self._xs.append(x.copy())
        self._ys.append(float(y))
        if y > 0 and (self.min_slope_seen is None or y < self.min_slope_seen):
            self.min_slope_seen = float(y)
        self._since_fit += 1
        if self._since_fit >= self.refit_every and len(self._xs) > self.feature_dim:
            self.theta = self._solve(np.stack(self._xs), np.array(self._ys))
            self._since_fit = 0
            self.fitted = True

    def predict(self, x: np.ndarray) -> float:
        """Predicted slope for a feature vector."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.feature_dim,):
            raise ValueError(f"x must have shape ({self.feature_dim},)")
        return float(x @ self.theta)

    @property
    def num_samples(self) -> int:
        return len(self._xs)


def collect_offline_dataset(
    devices,
    slo_seconds: float,
    kind: str = "time",
    start_batch: int = 1,
    growth: float = 1.6,
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-training data collection, mirroring §3.3.

    Each training device executes learning tasks of geometrically increasing
    mini-batch size until the computation time reaches twice the SLO; every
    task contributes one (feature-vector, observed-slope) pair.  ``kind``
    selects the slope target: seconds per sample ("time") or battery % per
    sample ("energy").
    """
    if kind not in ("time", "energy"):
        raise ValueError("kind must be 'time' or 'energy'")
    xs: list[np.ndarray] = []
    ys: list[float] = []
    for device in devices:
        batch = start_batch
        while True:
            measurement = device.execute(int(batch))
            x = measurement.features.as_vector()
            if kind == "time":
                slope = measurement.computation_time_s / measurement.batch_size
            else:
                slope = measurement.energy_percent / measurement.batch_size
            xs.append(x)
            ys.append(slope)
            if measurement.computation_time_s >= 2.0 * slo_seconds:
                break
            batch = max(int(batch * growth), batch + 1)
        device.idle(120.0)
    return np.stack(xs), np.array(ys)
