"""Tests for staleness-dampening strategies (Fig. 5 semantics)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dampening import (
    ConstantDampening,
    DropStale,
    ExponentialDampening,
    InverseDampening,
    LinearDampening,
    PolynomialDampening,
    StalenessTracker,
    beta_for_threshold,
)


class TestBeta:
    def test_intersection_property(self):
        """exp(-β·τ/2) must equal 1/(τ/2+1) at τ = τ_thres (paper §2.3)."""
        for tau_thres in [1.0, 5.0, 12.0, 24.0, 100.0]:
            beta = beta_for_threshold(tau_thres)
            half = tau_thres / 2.0
            assert math.exp(-beta * half) == pytest.approx(1.0 / (half + 1.0))

    def test_zero_threshold_limit(self):
        assert beta_for_threshold(0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            beta_for_threshold(-1.0)


class TestExponentialDampening:
    def test_fresh_gradient_full_weight(self):
        assert ExponentialDampening(12.0)(0.0) == 1.0

    def test_monotone_decreasing(self):
        d = ExponentialDampening(12.0)
        values = [d(t) for t in range(0, 50, 2)]
        assert all(a > b for a, b in zip(values, values[1:]))

    @given(st.floats(0.1, 100.0), st.floats(0.0, 200.0))
    @settings(max_examples=100)
    def test_bounds_property(self, tau_thres, staleness):
        factor = ExponentialDampening(tau_thres)(staleness)
        assert 0.0 < factor <= 1.0

    def test_crossover_with_inverse(self):
        """Exponential > inverse before τ_thres/2, < after (Fig. 5 shape)."""
        tau_thres = 12.0
        exp_d = ExponentialDampening(tau_thres)
        inv_d = InverseDampening()
        half = tau_thres / 2.0
        assert exp_d(half) == pytest.approx(inv_d(half))
        assert exp_d(half / 2) > inv_d(half / 2)
        assert exp_d(2 * half) < inv_d(2 * half)

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDampening(12.0)(-1.0)


class TestInverseDampening:
    @given(st.floats(0.0, 1000.0))
    @settings(max_examples=60)
    def test_matches_formula(self, tau):
        assert InverseDampening()(tau) == pytest.approx(1.0 / (tau + 1.0))


class TestConstantAndDrop:
    def test_constant(self):
        d = ConstantDampening(1.0)
        assert d(0) == d(100) == 1.0

    def test_constant_invalid(self):
        with pytest.raises(ValueError):
            ConstantDampening(0.0)

    def test_drop_stale(self):
        d = DropStale(max_staleness=0.0)
        assert d(0.0) == 1.0
        assert d(0.5) == 0.0

    def test_drop_with_tolerance(self):
        d = DropStale(max_staleness=2.0)
        assert d(2.0) == 1.0
        assert d(2.1) == 0.0


class TestStalenessTracker:
    def test_percentile_estimate(self):
        tracker = StalenessTracker(percentile=90.0, min_samples=5)
        for v in range(100):
            tracker.observe(float(v))
        assert tracker.tau_thres() == pytest.approx(
            np.percentile(np.arange(100.0), 90.0)
        )

    def test_bootstrap_phase(self):
        tracker = StalenessTracker(min_samples=10)
        assert not tracker.bootstrapped
        for _ in range(10):
            tracker.observe(3.0)
        assert tracker.bootstrapped

    def test_initial_tau_thres_bypasses_bootstrap(self):
        tracker = StalenessTracker(min_samples=10, initial_tau_thres=12.0)
        assert tracker.bootstrapped
        assert tracker.tau_thres() == 12.0

    def test_initial_estimate_replaced_by_data(self):
        tracker = StalenessTracker(
            percentile=100.0, min_samples=3, initial_tau_thres=12.0
        )
        for _ in range(3):
            tracker.observe(5.0)
        assert tracker.tau_thres() == 5.0

    def test_window_slides(self):
        tracker = StalenessTracker(percentile=100.0, window=10, min_samples=1)
        for v in [100.0] * 10 + [1.0] * 10:
            tracker.observe(v)
        assert tracker.tau_thres() == 1.0

    def test_negative_observation_rejected(self):
        tracker = StalenessTracker()
        with pytest.raises(ValueError):
            tracker.observe(-1.0)

    def test_empty_tracker_zero(self):
        assert StalenessTracker().tau_thres() == 0.0

    @given(st.lists(st.floats(0.0, 1e4), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_percentile_within_range_property(self, values):
        tracker = StalenessTracker(percentile=99.7, min_samples=1)
        for v in values:
            tracker.observe(v)
        estimate = tracker.tau_thres()
        assert min(values) <= estimate <= max(values)


class TestLinearDampening:
    def test_full_weight_at_zero(self):
        assert LinearDampening(tau_max=10.0)(0.0) == 1.0

    def test_zero_at_and_beyond_tau_max(self):
        strategy = LinearDampening(tau_max=10.0)
        assert strategy(10.0) == 0.0
        assert strategy(25.0) == 0.0

    def test_midpoint_is_half(self):
        assert LinearDampening(tau_max=8.0)(4.0) == pytest.approx(0.5)

    def test_invalid_tau_max(self):
        with pytest.raises(ValueError):
            LinearDampening(tau_max=0.0)

    @given(st.floats(0.1, 100.0), st.floats(0.0, 200.0))
    @settings(max_examples=60)
    def test_bounded_and_monotone(self, tau_max, tau):
        strategy = LinearDampening(tau_max=tau_max)
        value = strategy(tau)
        assert 0.0 <= value <= 1.0
        assert strategy(tau + 1.0) <= value


class TestPolynomialDampening:
    def test_power_one_recovers_dynsgd(self):
        poly = PolynomialDampening(power=1.0)
        inverse = InverseDampening()
        for tau in (0.0, 1.0, 5.0, 48.0):
            assert poly(tau) == pytest.approx(inverse(tau))

    def test_higher_power_decays_faster(self):
        slow = PolynomialDampening(power=1.0)
        fast = PolynomialDampening(power=3.0)
        assert fast(10.0) < slow(10.0)
        assert fast(0.0) == slow(0.0) == 1.0

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            PolynomialDampening(power=0.0)

    @given(st.floats(0.1, 6.0), st.floats(0.0, 300.0))
    @settings(max_examples=60)
    def test_bounded_and_monotone(self, power, tau):
        strategy = PolynomialDampening(power=power)
        value = strategy(tau)
        assert 0.0 < value <= 1.0
        assert strategy(tau + 1.0) <= value

    def test_sits_between_inverse_and_exponential_for_moderate_power(self):
        """For p slightly above 1 the curve hugs inverse at small τ but
        decays strictly faster, the family the Fig. 5 ablation sweeps."""
        poly = PolynomialDampening(power=1.5)
        inverse = InverseDampening()
        exponential = ExponentialDampening(tau_thres=12.0)
        assert poly(2.0) < inverse(2.0)
        assert poly(48.0) > exponential(48.0)
