"""Tests for federated partitioning schemes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.federated_split import (
    dirichlet_split,
    iid_split,
    shard_non_iid_split,
)


def _labels(n=120, classes=6, seed=0):
    return np.random.default_rng(seed).integers(0, classes, size=n)


class TestIIDSplit:
    def test_covers_everything_once(self):
        labels = _labels()
        part = iid_split(labels, 8, np.random.default_rng(1))
        part.validate(labels.size)
        assert sum(idx.size for idx in part.user_indices) == labels.size

    def test_sizes_balanced(self):
        part = iid_split(_labels(100), 10, np.random.default_rng(2))
        sizes = [idx.size for idx in part.user_indices]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_users(self):
        with pytest.raises(ValueError):
            iid_split(_labels(), 0, np.random.default_rng(0))


class TestShardNonIID:
    def test_covers_everything_once(self):
        labels = _labels(200, 10)
        part = shard_non_iid_split(labels, 10, np.random.default_rng(3))
        part.validate(labels.size)
        assert sum(idx.size for idx in part.user_indices) == labels.size

    def test_users_have_few_labels(self):
        """The paper's pathological split: ~2 shards → at most ~3 labels/user."""
        rng = np.random.default_rng(4)
        labels = np.sort(np.repeat(np.arange(10), 100))
        part = shard_non_iid_split(labels, 20, rng, shards_per_user=2)
        label_counts = [
            np.unique(labels[idx]).size for idx in part.user_indices
        ]
        assert max(label_counts) <= 4
        assert np.mean(label_counts) < 3.0

    def test_label_distribution_helper(self):
        labels = np.array([0, 0, 1, 1, 1, 2])
        part = shard_non_iid_split(labels, 2, np.random.default_rng(5))
        dist = part.label_distribution(labels, 3, user=0)
        assert dist.shape == (3,)
        assert dist.sum() == pytest.approx(1.0)

    @given(st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_partition_property(self, num_users):
        labels = _labels(144, 8, seed=num_users)
        part = shard_non_iid_split(labels, num_users, np.random.default_rng(6))
        part.validate(labels.size)
        seen = np.concatenate(part.user_indices)
        assert np.array_equal(np.sort(seen), np.arange(labels.size))


class TestDirichlet:
    def test_covers_everything_once(self):
        labels = _labels(300, 5)
        part = dirichlet_split(labels, 12, np.random.default_rng(7), alpha=0.5)
        part.validate(labels.size)
        assert sum(idx.size for idx in part.user_indices) == labels.size

    def test_small_alpha_is_skewed(self):
        labels = np.repeat(np.arange(4), 250)
        rng = np.random.default_rng(8)
        skewed = dirichlet_split(labels, 8, rng, alpha=0.05)
        uniform = dirichlet_split(labels, 8, np.random.default_rng(9), alpha=100.0)

        def mean_entropy(part):
            entropies = []
            for user in range(part.num_users):
                dist = part.label_distribution(labels, 4, user)
                nonzero = dist[dist > 0]
                if nonzero.size:
                    entropies.append(float(-(nonzero * np.log(nonzero)).sum()))
            return np.mean(entropies)

        assert mean_entropy(skewed) < mean_entropy(uniform)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            dirichlet_split(_labels(), 4, np.random.default_rng(0), alpha=0.0)


class TestValidation:
    def test_overlap_detected(self):
        from repro.data.federated_split import UserPartition

        bad = UserPartition([np.array([0, 1]), np.array([1, 2])])
        with pytest.raises(ValueError):
            bad.validate(3)

    def test_out_of_range_detected(self):
        from repro.data.federated_split import UserPartition

        bad = UserPartition([np.array([0, 99])])
        with pytest.raises(ValueError):
            bad.validate(3)
