"""Tests for the SimpleRNN layer (BPTT correctness)."""

from __future__ import annotations

import numpy as np

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.recurrent import GRU, SimpleRNN


def test_output_shapes():
    rng = np.random.default_rng(0)
    layer = SimpleRNN(4, 6, rng)
    x = rng.normal(size=(3, 5, 4))
    assert layer.forward(x).shape == (3, 6)

    seq_layer = SimpleRNN(4, 6, rng, return_sequences=True)
    assert seq_layer.forward(x).shape == (3, 5, 6)


def test_single_step_equals_dense_tanh():
    rng = np.random.default_rng(1)
    layer = SimpleRNN(3, 2, rng)
    x = rng.normal(size=(2, 1, 3))
    out = layer.forward(x)
    expected = np.tanh(x[:, 0, :] @ layer.params["Wx"] + layer.params["b"])
    assert np.allclose(out, expected)


def test_hidden_state_propagates():
    """Changing an early input must affect the final hidden state."""
    rng = np.random.default_rng(2)
    layer = SimpleRNN(2, 3, rng)
    x = rng.normal(size=(1, 4, 2))
    base = layer.forward(x.copy())
    x2 = x.copy()
    x2[0, 0, 0] += 1.0
    assert not np.allclose(layer.forward(x2), base)


def _bptt_gradcheck(return_sequences: bool):
    rng = np.random.default_rng(3)
    layer = SimpleRNN(3, 4, rng, return_sequences=return_sequences)
    x = rng.normal(size=(2, 5, 3))
    out = layer.forward(x)
    upstream = np.random.default_rng(4).normal(size=out.shape)

    layer.zero_grad()
    layer.forward(x)
    grad_in = layer.backward(upstream)

    def loss_of_input(x_in):
        return float((layer.forward(x_in) * upstream).sum())

    numeric = numerical_gradient(loss_of_input, x.copy())
    assert max_relative_error(grad_in, numeric) < 1e-6

    for key in layer.params:
        def loss_of_param(p, key=key):
            original = layer.params[key]
            layer.params[key] = p
            value = float((layer.forward(x) * upstream).sum())
            layer.params[key] = original
            return value

        numeric_p = numerical_gradient(loss_of_param, layer.params[key].copy())
        assert max_relative_error(layer.grads[key], numeric_p) < 1e-6, key


def test_bptt_gradients_final_state():
    _bptt_gradcheck(return_sequences=False)


def test_bptt_gradients_full_sequence():
    _bptt_gradcheck(return_sequences=True)


class TestGRU:
    def test_output_shapes(self):
        rng = np.random.default_rng(0)
        layer = GRU(3, 6, rng)
        x = rng.normal(size=(4, 7, 3))
        assert layer.forward(x).shape == (4, 6)
        seq = GRU(3, 6, rng, return_sequences=True)
        assert seq.forward(x).shape == (4, 7, 6)

    def test_gates_bound_hidden_state(self):
        """h_t is a convex combination of h_{t-1} and tanh output, so the
        hidden state can never leave [-1, 1]."""
        rng = np.random.default_rng(1)
        layer = GRU(2, 5, rng, return_sequences=True)
        x = rng.normal(0.0, 10.0, size=(3, 20, 2))
        out = layer.forward(x)
        assert np.abs(out).max() <= 1.0

    def test_parameter_count(self):
        layer = GRU(3, 4, np.random.default_rng(0))
        # 3 gates × (3·4 input + 4·4 recurrent + 4 bias)
        assert layer.num_parameters == 3 * (12 + 16 + 4)

    def _gru_gradcheck(self, return_sequences: bool):
        rng = np.random.default_rng(3)
        layer = GRU(3, 4, rng, return_sequences=return_sequences)
        x = rng.normal(size=(2, 5, 3))
        out = layer.forward(x)
        upstream = np.random.default_rng(4).normal(size=out.shape)

        layer.zero_grad()
        layer.forward(x)
        grad_in = layer.backward(upstream)

        def loss_of_input(x_in):
            return float((layer.forward(x_in) * upstream).sum())

        numeric = numerical_gradient(loss_of_input, x.copy())
        assert max_relative_error(grad_in, numeric) < 1e-6

        for key in layer.params:
            def loss_of_param(p, key=key):
                original = layer.params[key]
                layer.params[key] = p
                value = float((layer.forward(x) * upstream).sum())
                layer.params[key] = original
                return value

            numeric_p = numerical_gradient(loss_of_param, layer.params[key].copy())
            assert max_relative_error(layer.grads[key], numeric_p) < 1e-6, key

    def test_bptt_gradients_final_state(self):
        self._gru_gradcheck(return_sequences=False)

    def test_bptt_gradients_full_sequence(self):
        self._gru_gradcheck(return_sequences=True)

    def test_early_signal_survives_long_sequence(self):
        """An input at step 0 must still be detectable in the final state
        after 30 steps of zeros (the update gate z ≈ 0.5 at random init
        decays it ~0.5^t, so 'detectable' means small but nonzero)."""
        t = 30
        x = np.zeros((2, t, 2))
        x[0, 0, :] = 3.0  # signal only at the first step of sample 0
        gru_out = GRU(2, 8, np.random.default_rng(6)).forward(x)
        gap = np.abs(gru_out[0] - gru_out[1]).max()
        assert gap > 1e-8
