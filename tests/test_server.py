"""Tests for the middleware: controller, worker runtime and FleetServer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_adasgd
from repro.data import make_mnist_like, shard_non_iid_split
from repro.devices import SimulatedDevice, get_spec
from repro.nn import build_logistic
from repro.profiler import IProf, SLO, collect_offline_dataset
from repro.server import (
    Controller,
    FleetServer,
    PercentileThreshold,
    RejectionReason,
    TaskAssignment,
    TaskRejection,
    Worker,
)


class TestPercentileThreshold:
    def test_inactive_until_min_samples(self):
        thr = PercentileThreshold(50.0, min_samples=5)
        for v in [1.0, 2.0]:
            thr.observe(v)
        assert thr.value() is None

    def test_percentile_value(self):
        thr = PercentileThreshold(50.0, min_samples=1)
        for v in range(101):
            thr.observe(float(v))
        assert thr.value() == pytest.approx(50.0)

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            PercentileThreshold(101.0)


class TestController:
    def test_permissive_by_default(self):
        controller = Controller()
        decision = controller.check(batch_size=1, similarity=1.0)
        assert decision.accepted

    def test_static_size_threshold(self):
        controller = Controller(min_batch_size=50)
        assert not controller.check(10, 0.5).accepted
        assert controller.check(10, 0.5).reason is RejectionReason.BATCH_TOO_SMALL
        assert controller.check(80, 0.5).accepted

    def test_static_similarity_threshold(self):
        controller = Controller(max_similarity=0.9)
        rejected = controller.check(100, 0.95)
        assert not rejected.accepted
        assert rejected.reason is RejectionReason.SIMILARITY_TOO_HIGH
        assert controller.check(100, 0.5).accepted

    def test_percentile_size_threshold_learns(self):
        controller = Controller(
            min_batch_size=PercentileThreshold(50.0, min_samples=10)
        )
        # Bootstrap: everything accepted while the threshold is inactive.
        for size in range(10, 110, 10):
            assert controller.check(size, 1.0).accepted
        # Now the median is ~55: a size-10 request must be rejected.
        assert not controller.check(10, 1.0).accepted

    def test_counters(self):
        controller = Controller(min_batch_size=50)
        controller.check(10, 1.0)
        controller.check(100, 1.0)
        assert controller.rejected_count == 1
        assert controller.accepted_count == 1


def _make_stack(num_users=6, seed=0):
    rng = np.random.default_rng(seed)
    dataset = make_mnist_like(seed=seed, train_per_class=20, test_per_class=5)
    partition = shard_non_iid_split(dataset.train_y, num_users, rng)
    model = build_logistic(np.random.default_rng(seed + 1), 28 * 28, 10)

    train_devices = [
        SimulatedDevice(get_spec(n), np.random.default_rng(seed + 10 + i))
        for i, n in enumerate(["Galaxy S6", "Nexus 5", "Pixel"])
    ]
    xs, ys = collect_offline_dataset(train_devices, slo_seconds=3.0, kind="time")
    iprof = IProf()
    iprof.pretrain_time(xs, ys)

    optimizer = make_adasgd(
        model.get_parameters(), num_labels=10, learning_rate=0.1,
        initial_tau_thres=12.0,
    )
    server = FleetServer(optimizer, iprof, SLO(time_seconds=3.0))

    workers = []
    device_names = ["Galaxy S7", "Honor 10", "Xperia E3", "Pixel", "HTC U11", "MotoG3"]
    for uid in range(num_users):
        data_x, data_y = dataset.subset(partition.user_indices[uid])
        worker_model = build_logistic(np.random.default_rng(seed + 2), 28 * 28, 10)
        device = SimulatedDevice(
            get_spec(device_names[uid % len(device_names)]),
            np.random.default_rng(seed + 20 + uid),
        )
        workers.append(
            Worker(uid, worker_model, data_x, data_y, 10, device,
                   np.random.default_rng(seed + 30 + uid))
        )
    return server, workers, dataset


class TestWorker:
    def test_request_carries_label_and_device_info(self):
        _, workers, _ = _make_stack()
        request = workers[0].build_request()
        assert request.worker_id == 0
        assert request.label_counts.sum() == workers[0].num_examples
        assert request.device_model == workers[0].device.spec.name

    def test_execute_assignment_produces_gradient(self):
        server, workers, _ = _make_stack()
        worker = workers[0]
        assignment = server.handle_request(worker.build_request())
        assert isinstance(assignment, TaskAssignment)
        result = worker.execute_assignment(assignment)
        assert result.gradient.shape == assignment.parameters.shape
        assert result.batch_size <= assignment.batch_size
        assert result.computation_time_s > 0
        assert result.label_counts.sum() == result.batch_size

    def test_batch_clipped_to_local_data(self):
        server, workers, _ = _make_stack()
        worker = workers[0]
        assignment = TaskAssignment(
            parameters=server.current_parameters(),
            pull_step=0,
            batch_size=10_000,
            similarity=1.0,
        )
        result = worker.execute_assignment(assignment)
        assert result.batch_size == worker.num_examples


class TestFleetServer:
    def test_full_protocol_round(self):
        server, workers, _ = _make_stack()
        worker = workers[0]
        assignment = server.handle_request(worker.build_request())
        result = worker.execute_assignment(assignment)
        params_before = server.current_parameters()
        assert server.handle_result(result)
        assert server.clock == 1
        assert not np.allclose(server.current_parameters(), params_before)

    def test_similarity_neutral_during_bootstrap(self):
        """With an empty global distribution the server must not boost:
        similarity reports 1.0 until enough effective samples accumulate."""
        server, workers, _ = _make_stack()
        assignment = server.handle_request(workers[0].build_request())
        assert assignment.similarity == 1.0

    def test_similarity_grows_as_labels_repeat(self):
        server, workers, _ = _make_stack()
        worker = workers[0]
        for _ in range(3):
            assignment = server.handle_request(worker.build_request())
            server.handle_result(worker.execute_assignment(assignment))
        later = server.handle_request(worker.build_request())
        assert later.similarity > 0.5

    def test_controller_rejection_path(self):
        server, workers, _ = _make_stack()
        server.controller = Controller(min_batch_size=10**9)
        rejection = server.handle_request(workers[0].build_request())
        assert isinstance(rejection, TaskRejection)
        assert rejection.reason is RejectionReason.BATCH_TOO_SMALL
        assert server.rejections

    def test_profiler_feedback_loop(self):
        server, workers, _ = _make_stack()
        worker = workers[0]
        name = worker.device.spec.name
        for _ in range(3):
            assignment = server.handle_request(worker.build_request())
            server.handle_result(worker.execute_assignment(assignment))
        assert server.profiler.time_predictor.has_personal_model(name)

    def test_training_improves_accuracy(self):
        """Integration: 60 protocol rounds must beat chance accuracy."""
        server, workers, dataset = _make_stack()
        rng = np.random.default_rng(42)
        for _ in range(60):
            worker = workers[int(rng.integers(len(workers)))]
            assignment = server.handle_request(worker.build_request())
            if isinstance(assignment, TaskAssignment):
                server.handle_result(worker.execute_assignment(assignment))
        eval_model = build_logistic(np.random.default_rng(0), 28 * 28, 10)
        eval_model.set_parameters(server.current_parameters())
        acc = eval_model.evaluate_accuracy(dataset.test_x, dataset.test_y)
        assert acc > 0.3   # chance is 0.1
