"""Tests for Byzantine-robust aggregation rules and their server hook."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adasgd import GradientUpdate, StalenessAwareServer
from repro.core.dampening import ConstantDampening
from repro.core.robust import (
    average,
    coordinate_median,
    krum,
    multi_krum,
    trimmed_mean,
)


def _honest_plus_byzantine(rng, k=8, dim=6, attack=100.0, byzantine=1):
    honest = rng.normal(1.0, 0.1, size=(k - byzantine, dim))
    evil = np.full((byzantine, dim), attack)
    return np.vstack([honest, evil])


class TestRules:
    def test_average_is_mean(self):
        grads = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(average(grads), [2.0, 3.0])

    def test_median_ignores_outlier(self):
        rng = np.random.default_rng(0)
        grads = _honest_plus_byzantine(rng)
        out = coordinate_median(grads)
        assert np.abs(out - 1.0).max() < 0.5

    def test_trimmed_mean_ignores_outlier(self):
        rng = np.random.default_rng(1)
        grads = _honest_plus_byzantine(rng)
        out = trimmed_mean(grads, trim=1)
        assert np.abs(out - 1.0).max() < 0.5

    def test_trimmed_mean_validation(self):
        with pytest.raises(ValueError):
            trimmed_mean(np.ones((4, 2)), trim=2)
        with pytest.raises(ValueError):
            trimmed_mean(np.ones((4, 2)), trim=-1)

    def test_krum_selects_honest_gradient(self):
        rng = np.random.default_rng(2)
        grads = _honest_plus_byzantine(rng, k=8, byzantine=2)
        out = krum(grads, num_byzantine=2)
        assert np.abs(out - 1.0).max() < 0.5

    def test_krum_needs_enough_workers(self):
        with pytest.raises(ValueError):
            krum(np.ones((3, 2)), num_byzantine=1)

    def test_multi_krum_averages_selected(self):
        rng = np.random.default_rng(3)
        grads = _honest_plus_byzantine(rng, k=10, byzantine=2)
        out = multi_krum(grads, num_byzantine=2)
        assert np.abs(out - 1.0).max() < 0.3

    def test_multi_krum_selection_bounds(self):
        with pytest.raises(ValueError):
            multi_krum(np.ones((6, 2)), num_byzantine=1, num_selected=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average(np.zeros((0, 3)))

    @given(st.integers(5, 12), st.floats(10.0, 1e4))
    @settings(max_examples=30)
    def test_median_bounded_by_honest_range_property(self, k, attack):
        rng = np.random.default_rng(k)
        grads = _honest_plus_byzantine(rng, k=k, attack=attack, byzantine=1)
        out = coordinate_median(grads)
        honest = grads[:-1]
        assert (out >= honest.min(axis=0) - 1e-9).all()
        assert (out <= honest.max(axis=0) + 1e-9).all()


class TestServerIntegration:
    def _server(self, rule):
        return StalenessAwareServer(
            np.zeros(3),
            dampening=ConstantDampening(1.0),
            aggregation_k=5,
            learning_rate=1.0,
            robust_rule=rule,
        )

    def test_average_rule_matches_default(self):
        rng = np.random.default_rng(4)
        grads = [rng.normal(size=3) for _ in range(5)]
        plain = self._server(None)
        robust = self._server(average)
        for g in grads:
            plain.submit(GradientUpdate(gradient=g, pull_step=0))
            robust.submit(GradientUpdate(gradient=g, pull_step=0))
        assert np.allclose(plain.current_parameters(), robust.current_parameters())

    def test_median_rule_defeats_poisoned_buffer(self):
        rng = np.random.default_rng(5)
        honest = [rng.normal(0.1, 0.01, size=3) for _ in range(4)]
        poison = np.full(3, 1e6)
        plain = self._server(None)
        robust = self._server(coordinate_median)
        for server in (plain, robust):
            for g in honest:
                server.submit(GradientUpdate(gradient=g.copy(), pull_step=0))
            server.submit(GradientUpdate(gradient=poison.copy(), pull_step=0))
        assert np.abs(plain.current_parameters()).max() > 1e5
        assert np.abs(robust.current_parameters()).max() < 10.0
