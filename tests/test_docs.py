"""The docs tier stays true: protocol conformance + link integrity.

``docs/protocol.md`` is the *normative* wire-format specification; these
tests parse its ``<!-- conformance: name -->``-tagged tables and assert
the declared byte layouts and code tables against the implementation in
``repro.frontend.framing``. If a test here fails, the document and the
code have diverged — fix the code, or amend the spec and bump
``PROTOCOL_VERSION`` (protocol.md §2).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.doccheck import check_paths, github_slug, heading_slugs
from repro.frontend import framing

REPO_ROOT = Path(__file__).resolve().parents[1]
PROTOCOL = REPO_ROOT / "docs" / "protocol.md"

_TAG = re.compile(r"<!--\s*conformance:\s*([\w-]+)\s*-->")


def _conformance_tables() -> dict[str, list[dict[str, str]]]:
    """Parse every tagged table into a list of {column: cell} rows."""
    tables: dict[str, list[dict[str, str]]] = {}
    lines = PROTOCOL.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        match = _TAG.search(lines[index])
        if not match:
            index += 1
            continue
        name = match.group(1)
        index += 1
        while index < len(lines) and not lines[index].strip().startswith("|"):
            index += 1
        assert index < len(lines), f"conformance tag {name!r} has no table"
        header = [c.strip() for c in lines[index].strip().strip("|").split("|")]
        index += 2  # skip the |---| separator row
        rows = []
        while index < len(lines) and lines[index].strip().startswith("|"):
            cells = [
                c.strip().strip("`")
                for c in lines[index].strip().strip("|").split("|")
            ]
            rows.append(dict(zip(header, cells)))
            index += 1
        tables[name] = rows
    return tables


TABLES = _conformance_tables()

#: layout-table tag -> implemented struct (fixed prefix of the body)
LAYOUTS = {
    "frame-header": framing.FRAME_HEADER,
    "hello-body": framing.HELLO_BODY,
    "welcome-body": framing.WELCOME_BODY,
    "request-body": framing.REQUEST_BODY,
    "assignment-body": framing.ASSIGNMENT_BODY,
    "rejection-body": framing.REJECTION_BODY,
    "result-body": framing.RESULT_BODY,
    "result-ack-body": framing.RESULT_ACK_BODY,
    "overloaded-body": framing.OVERLOADED_BODY,
    "goodbye-body": framing.GOODBYE_BODY,
    "error-body": framing.ERROR_BODY,
    "blob-header": framing.BLOB_HEADER,
    "sparse-header": framing.SPARSE_HEADER,
}


class TestProtocolConformance:
    def test_every_layout_is_documented(self):
        for tag in LAYOUTS:
            assert tag in TABLES, f"protocol.md lacks a {tag!r} table"

    @pytest.mark.parametrize("tag", sorted(LAYOUTS))
    def test_declared_sizes_match_struct(self, tag):
        struct_obj = LAYOUTS[tag]
        rows = TABLES[tag]
        declared = sum(int(row["Size"]) for row in rows)
        assert declared == struct_obj.size, (
            f"{tag}: doc declares {declared} bytes, "
            f"struct packs {struct_obj.size}"
        )

    @pytest.mark.parametrize("tag", sorted(LAYOUTS))
    def test_offsets_are_contiguous(self, tag):
        offset = 0
        for row in TABLES[tag]:
            assert int(row["Offset"]) == offset, (
                f"{tag}: field {row['Field']} declared at {row['Offset']}, "
                f"previous fields end at {offset}"
            )
            offset += int(row["Size"])

    def test_constants(self):
        declared = {row["Constant"]: int(row["Value"], 0) for row in TABLES["constants"]}
        assert declared["MAGIC"] == framing.MAGIC
        assert declared["PROTOCOL_VERSION"] == framing.PROTOCOL_VERSION
        assert declared["DEFAULT_MAX_FRAME_BYTES"] == framing.DEFAULT_MAX_FRAME_BYTES

    def test_frame_type_codes(self):
        declared = {row["Name"]: int(row["Code"], 0) for row in TABLES["frame-types"]}
        implemented = {t.name: int(t) for t in framing.FrameType}
        assert declared == implemented

    def test_error_codes(self):
        declared = {row["Name"]: int(row["Code"], 0) for row in TABLES["error-codes"]}
        implemented = {e.name: int(e) for e in framing.ErrorCode}
        assert declared == implemented

    def test_overload_scopes(self):
        declared = {row["Name"]: int(row["Code"], 0) for row in TABLES["overload-scopes"]}
        implemented = {s.name: int(s) for s in framing.OverloadScope}
        assert declared == implemented

    def test_goodbye_reasons(self):
        declared = {row["Name"]: int(row["Code"], 0) for row in TABLES["goodbye-reasons"]}
        implemented = {r.name: int(r) for r in framing.GoodbyeReason}
        assert declared == implemented

    def test_rejection_codes(self):
        declared = {row["Name"]: int(row["Code"], 0) for row in TABLES["rejection-codes"]}
        implemented = {
            reason.name: code for reason, code in framing.REJECTION_CODE.items()
        }
        assert declared == implemented

    def test_dtype_codes(self):
        declared = {row["Name"]: int(row["Code"], 0) for row in TABLES["dtype-codes"]}
        implemented = dict(framing.DTYPE_CODE)
        implemented["sparse"] = framing.SPARSE_CODE
        assert declared == implemented

    def test_header_plus_body_roundtrip_matches_declared_total(self):
        """A concrete frame's bytes match header size + declared body."""
        frame = framing.pack_result_ack(seq=7, applied=True)
        header = sum(int(r["Size"]) for r in TABLES["frame-header"])
        body = sum(int(r["Size"]) for r in TABLES["result-ack-body"])
        assert len(frame) == header + body


class TestDocLinks:
    def test_readme_and_docs_links_resolve(self):
        findings = check_paths([REPO_ROOT / "README.md", REPO_ROOT / "docs"])
        assert not findings, "\n".join(str(f) for f in findings)

    def test_github_slugging(self):
        assert github_slug("1. Overview") == "1-overview"
        assert github_slug("Enforced invariants (repro-lint)") == (
            "enforced-invariants-repro-lint"
        )
        assert github_slug("§8 Graceful drain") == "8-graceful-drain"

    def test_duplicate_headings_get_suffixes(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Same\n\n# Same\n", encoding="utf-8")
        assert heading_slugs(doc) == {"same", "same-1"}

    def test_broken_link_is_reported(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("see [x](missing.md) and [y](#nope)\n# Real\n")
        findings = check_paths([doc])
        assert {f.target for f in findings} == {"missing.md", "#nope"}

    def test_code_fences_are_ignored(self, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("```\n[x](missing.md)\n```\n")
        assert check_paths([doc]) == []
