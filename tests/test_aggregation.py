"""Tests for time-window and hybrid aggregation policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TimeWindowAggregator, HybridAggregator, make_ssgd
from repro.core.adasgd import GradientUpdate


def _update(value=1.0):
    return GradientUpdate(gradient=np.array([value]), pull_step=0)


class TestTimeWindow:
    def test_no_update_within_window(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=10**6)
        agg = TimeWindowAggregator(server, window_s=60.0)
        assert not agg.submit(_update(), now_s=0.0)
        assert not agg.submit(_update(), now_s=30.0)
        assert server.clock == 0

    def test_flush_at_window_close(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=10**6)
        agg = TimeWindowAggregator(server, window_s=60.0)
        agg.submit(_update(), now_s=0.0)
        agg.submit(_update(), now_s=30.0)
        assert agg.submit(_update(), now_s=61.0)
        assert server.clock == 1
        # All three gradients aggregated into one update.
        assert np.allclose(server.current_parameters(), [-3.0])
        assert agg.windows_flushed == 1

    def test_tick_flushes_quiet_window(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=10**6)
        agg = TimeWindowAggregator(server, window_s=60.0)
        agg.submit(_update(), now_s=0.0)
        assert not agg.tick(now_s=59.0)
        assert agg.tick(now_s=60.0)
        assert server.clock == 1

    def test_tick_without_pending_is_noop(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=10**6)
        agg = TimeWindowAggregator(server, window_s=60.0)
        assert not agg.tick(now_s=0.0)
        assert not agg.tick(now_s=120.0)
        assert server.clock == 0

    def test_invalid_window(self):
        server = make_ssgd(np.zeros(1))
        with pytest.raises(ValueError):
            TimeWindowAggregator(server, window_s=0.0)

    def test_consecutive_windows(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=10**6)
        agg = TimeWindowAggregator(server, window_s=10.0)
        t = 0.0
        for _ in range(5):
            agg.submit(_update(), now_s=t)
            t += 11.0
        assert server.clock >= 4


class TestHybrid:
    def test_count_trigger_fires_first(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=2)
        agg = HybridAggregator(server, window_s=1000.0)
        assert not agg.submit(_update(), now_s=0.0)
        assert agg.submit(_update(), now_s=1.0)
        assert server.clock == 1

    def test_time_trigger_fires_when_quiet(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=100)
        agg = HybridAggregator(server, window_s=10.0)
        agg.submit(_update(), now_s=0.0)
        assert agg.submit(_update(), now_s=15.0)
        assert server.clock == 1

    def test_count_trigger_restarts_window(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=2)
        agg = HybridAggregator(server, window_s=20.0)
        agg.submit(_update(), now_s=0.0)
        agg.submit(_update(), now_s=19.0)     # count trigger at t=19
        # Window restarted at 19; a submit at 30 is inside the new window.
        assert not agg.submit(_update(), now_s=30.0)
        assert server.clock == 1
