"""Every example stays runnable and self-describing.

Each ``examples/`` script must import cleanly (so its API usage cannot
rot), carry a module docstring explaining what it demonstrates, state a
``python -m examples.<name>`` run line in that docstring (the form the
README promises), and expose a ``main()`` behind a ``__main__`` guard.
"""

from __future__ import annotations

import ast
import importlib
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))
EXAMPLE_NAMES = [path.stem for path in EXAMPLES]

assert EXAMPLES, "examples/ directory is empty — the glob is wrong"


@pytest.fixture(scope="module", autouse=True)
def _repo_root_on_path():
    """``import examples.<name>`` needs the repo root importable."""
    sys.path.insert(0, str(REPO_ROOT))
    yield
    sys.path.remove(str(REPO_ROOT))


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_example_imports_cleanly(name):
    module = importlib.import_module(f"examples.{name}")
    assert callable(getattr(module, "main", None)), (
        f"examples/{name}.py has no main() entry point"
    )


@pytest.mark.parametrize("path", EXAMPLES, ids=EXAMPLE_NAMES)
def test_example_docstring_states_its_run_line(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    assert docstring, f"examples/{path.name} lacks a module docstring"
    assert len(docstring.splitlines()) >= 2, (
        f"examples/{path.name}: docstring should explain the example, "
        "not just title it"
    )
    assert f"python -m examples.{path.stem}" in docstring, (
        f"examples/{path.name}: docstring must state its "
        f"'python -m examples.{path.stem}' run line"
    )


@pytest.mark.parametrize("path", EXAMPLES, ids=EXAMPLE_NAMES)
def test_example_has_main_guard(path):
    source = path.read_text(encoding="utf-8")
    assert '__name__ == "__main__"' in source or "__name__ == '__main__'" in source, (
        f"examples/{path.name} lacks a __main__ guard"
    )
