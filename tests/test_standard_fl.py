"""Tests for Standard-FL eligibility, charging model and freshness gap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.activity import UserActivityModel
from repro.devices.charging import ChargingModel
from repro.network import WIFI, HSPA_3G, NetworkConditions, NetworkInterface
from repro.simulation.standard_fl import (
    EligibilityPolicy,
    ParticipantProfile,
    eligibility_fraction,
    simulate_freshness,
)

_DAY_S = 24 * 3600.0


def _network(seed: int, link=WIFI) -> NetworkInterface:
    rng = np.random.default_rng(seed)
    return NetworkInterface(NetworkConditions(rng, fixed_link=link), rng)


def _profile(seed: int, link=WIFI) -> ParticipantProfile:
    return ParticipantProfile(
        activity=UserActivityModel(seed=seed),
        charging=ChargingModel(seed=seed),
        network=_network(seed, link),
    )


class TestChargingModel:
    def test_overnight_block_charges(self):
        model = ChargingModel(seed=1, bedtime_hour=23.0, wakeup_hour=7.0,
                              jitter_hours=0.0, topup_rate_per_day=0.0)
        assert model.is_charging(23.5 * 3600.0)       # 23:30 night 0
        assert model.is_charging(_DAY_S + 3 * 3600.0)  # 03:00 next day
        assert model.is_charging(_DAY_S + 6.5 * 3600.0)

    def test_daytime_unplugged_without_topups(self):
        model = ChargingModel(seed=1, jitter_hours=0.0, topup_rate_per_day=0.0)
        for hour in (9.0, 12.0, 15.0, 18.0, 21.0):
            assert not model.is_charging(_DAY_S + hour * 3600.0)

    def test_deterministic_per_seed(self):
        a = ChargingModel(seed=5)
        b = ChargingModel(seed=5)
        times = np.linspace(0, 3 * _DAY_S, 200)
        assert [a.is_charging(t) for t in times] == [b.is_charging(t) for t in times]

    def test_daily_jitter_varies_across_days(self):
        model = ChargingModel(seed=3, jitter_hours=1.5, topup_rate_per_day=0.0)
        # Probe a boundary instant across many days; with jitter the
        # plug-in time crosses 22:40 on some days but not others.
        probe_hour = 22.7
        states = {model.is_charging(day * _DAY_S + probe_hour * 3600.0)
                  for day in range(15)}
        assert states == {True, False}

    def test_next_charging_start(self):
        model = ChargingModel(seed=1, jitter_hours=0.0, topup_rate_per_day=0.0)
        noon = _DAY_S + 12 * 3600.0
        start = model.next_charging_start(noon)
        assert start is not None
        assert start > noon
        assert model.is_charging(start)
        # Charging instants return themselves.
        assert model.next_charging_start(start) == start

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ChargingModel(bedtime_hour=24.0)
        with pytest.raises(ValueError):
            ChargingModel(jitter_hours=-1.0)
        with pytest.raises(ValueError):
            ChargingModel(topup_minutes=0.0)
        with pytest.raises(ValueError):
            ChargingModel().is_charging(-1.0)


class TestEligibilityPolicy:
    def test_factories(self):
        standard = EligibilityPolicy.standard_fl()
        online = EligibilityPolicy.online_fl()
        assert standard.require_idle and standard.require_charging
        assert standard.require_unmetered
        assert not (online.require_idle or online.require_charging
                    or online.require_unmetered)

    def test_online_policy_always_eligible(self):
        profile = _profile(seed=2, link=HSPA_3G)  # metered, irrelevant online
        online = EligibilityPolicy.online_fl()
        for t in np.linspace(0, 2 * _DAY_S, 50):
            assert profile.eligible(float(t), online)

    def test_metered_network_blocks_standard_fl(self):
        profile = _profile(seed=2, link=HSPA_3G)
        standard = EligibilityPolicy.standard_fl()
        for t in np.linspace(0, 2 * _DAY_S, 100):
            assert not profile.eligible(float(t), standard)

    def test_charging_requirement_gates_daytime(self):
        profile = ParticipantProfile(
            activity=UserActivityModel(seed=9, session_rate_per_hour=0.0),
            charging=ChargingModel(seed=9, jitter_hours=0.0, topup_rate_per_day=0.0),
            network=_network(9, WIFI),
        )
        standard = EligibilityPolicy.standard_fl()
        noon = _DAY_S + 12 * 3600.0
        night = _DAY_S + 2 * 3600.0
        assert not profile.eligible(noon, standard)
        assert profile.eligible(night, standard)

    def test_next_eligible_is_eligible(self):
        profile = _profile(seed=4)
        standard = EligibilityPolicy.standard_fl()
        start = _DAY_S + 10 * 3600.0
        pickup = profile.next_eligible(start, standard)
        assert pickup is not None and pickup >= start
        assert profile.eligible(pickup, standard)


class TestFleetCurves:
    def test_standard_fl_availability_peaks_at_night(self):
        profiles = [_profile(seed=i) for i in range(12)]
        curve = eligibility_fraction(profiles, EligibilityPolicy.standard_fl(),
                                     day_start_s=_DAY_S)
        night = np.concatenate([curve[0:5], curve[23:]]).mean()
        day = curve[10:20].mean()
        assert night > day + 0.3, "the paper's §1 skew: night ≫ day"

    def test_online_fl_availability_flat_at_one(self):
        profiles = [_profile(seed=i) for i in range(6)]
        curve = eligibility_fraction(profiles, EligibilityPolicy.online_fl())
        assert (curve == 1.0).all()

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            eligibility_fraction([], EligibilityPolicy.online_fl())


class TestFreshness:
    def test_online_beats_standard_by_hours(self, rng):
        profiles = [_profile(seed=i) for i in range(8)]
        online = simulate_freshness(
            profiles, EligibilityPolicy.online_fl(), np.random.default_rng(0),
            policy_name="online", events_per_user=10,
        )
        standard = simulate_freshness(
            profiles, EligibilityPolicy.standard_fl(), np.random.default_rng(0),
            policy_name="standard", events_per_user=10,
        )
        # Online: one pickup round trip (minutes).  Standard: hours.
        assert online.median_delay_s < 10 * 60.0
        assert standard.median_delay_s > 2 * 3600.0
        assert standard.median_delay_s > 10 * online.median_delay_s

    def test_delays_nonnegative(self):
        profiles = [_profile(seed=3)]
        report = simulate_freshness(
            profiles, EligibilityPolicy.standard_fl(), np.random.default_rng(1),
            events_per_user=5,
        )
        assert (report.delays_s >= 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            simulate_freshness([], EligibilityPolicy.online_fl(),
                               np.random.default_rng(0), events_per_user=0)
