"""Cross-subsystem integration tests for the extension modules.

Each test wires several subsystems together the way a deployment would:
telemetry fed by the end-to-end simulation, implicit-momentum estimation
from endogenous staleness, codec wire sizes driving network transfer costs,
and checkpointing a model trained through the middleware.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    compensated_momentum,
    estimate_mean_staleness,
    implicit_momentum_from_staleness,
    make_adasgd,
)
from repro.data.federated_split import iid_split
from repro.network import LTE_4G, NetworkConditions, NetworkInterface
from repro.nn.models import build_logistic
from repro.nn.serialization import load_into_model, save_model
from repro.profiler.coldstart import collect_offline_dataset
from repro.profiler.iprof import IProf, SLO
from repro.server.codec import VectorCodec
from repro.server.server import FleetServer
from repro.server.telemetry import MetricsRegistry
from repro.simulation.fleet_sim import FleetSimConfig, FleetSimulation


@pytest.fixture
def small_sim(tiny_dataset, rng):
    from repro.devices.catalog import fleet_specs
    from repro.devices.device import SimulatedDevice

    model = build_logistic(
        rng,
        in_features=int(np.prod(tiny_dataset.train_x.shape[1:])),
        num_classes=tiny_dataset.num_classes,
    )
    iprof = IProf()
    training = [
        SimulatedDevice(spec, np.random.default_rng(100 + i))
        for i, spec in enumerate(fleet_specs(4, np.random.default_rng(5)))
    ]
    xs, ys = collect_offline_dataset(training, slo_seconds=3.0, kind="time")
    iprof.pretrain_time(xs, ys)
    server = FleetServer(
        optimizer=make_adasgd(
            model.get_parameters(), num_labels=tiny_dataset.num_classes,
            learning_rate=0.05, initial_tau_thres=12.0,
        ),
        profiler=iprof,
        slo=SLO(time_seconds=3.0),
    )
    partition = iid_split(tiny_dataset.train_y, 8, rng)
    return FleetSimulation(
        server=server, model=model, dataset=tiny_dataset, partition=partition,
        rng=rng, config=FleetSimConfig(horizon_s=1200.0, mean_think_time_s=20.0),
    )


class TestTelemetryFromSimulation:
    def test_registry_mirrors_simulation_accounting(self, small_sim):
        result = small_sim.run()
        registry = MetricsRegistry()
        registry.counter("tasks_completed").increment(result.completed)
        registry.counter("tasks_aborted").increment(result.aborted)
        latency = registry.summary("round_trip_s")
        for value in result.round_trip_seconds:
            latency.observe(value)
        staleness = registry.summary("staleness")
        for value in result.applied_staleness(small_sim.server):
            staleness.observe(float(value))

        assert registry.counter("tasks_completed").value == result.completed
        assert latency.count == len(result.round_trip_seconds)
        assert staleness.percentile(99.7) >= staleness.percentile(50)
        report = registry.report()
        assert "tasks_completed" in report and "round_trip_s" in report


class TestMomentumFromEndogenousStaleness:
    def test_compensation_pipeline(self, small_sim):
        small_sim.run()
        staleness = small_sim.server.optimizer.applied_staleness()
        mean_tau = estimate_mean_staleness(staleness)
        implicit = implicit_momentum_from_staleness(mean_tau)
        explicit = compensated_momentum(0.9, implicit)
        assert 0.0 <= implicit < 1.0
        assert 0.0 <= explicit <= 0.9
        # Composition reconstructs the target unless already saturated.
        if implicit < 0.9:
            total = 1.0 - (1.0 - explicit) * (1.0 - implicit)
            assert total == pytest.approx(0.9)


class TestCodecDrivesNetworkCosts:
    def test_wire_size_to_transfer_time_chain(self, rng):
        vector = rng.normal(size=50_000)
        codec = VectorCodec(precision="f16")
        blob = codec.encode(vector)
        interface = NetworkInterface(
            NetworkConditions(np.random.default_rng(0), fixed_link=LTE_4G),
            np.random.default_rng(1), noise_std=0.0,
        )
        outcome = interface.transfer(blob.wire_bytes, 0.0, uplink=True)
        # A quantized+compressed 50k-vector moves in well under a second
        # on nominal 4G; the decoded vector still matches to f16 precision.
        assert outcome.seconds < 1.0
        decoded = codec.decode(blob)
        assert np.abs(decoded - vector).max() < 0.05

    def test_higher_precision_costs_more_seconds(self, rng):
        vector = rng.normal(size=50_000)
        times = {}
        for precision in ("f16", "f64"):
            blob = VectorCodec(precision=precision).encode(vector)
            interface = NetworkInterface(
                NetworkConditions(np.random.default_rng(0), fixed_link=LTE_4G),
                np.random.default_rng(1), noise_std=0.0,
            )
            times[precision] = interface.transfer(blob.wire_bytes, 0.0, True).seconds
        assert times["f64"] > times["f16"]


class TestCheckpointAfterMiddlewareTraining:
    def test_save_and_restore_trained_global_model(self, small_sim, tmp_path):
        result = small_sim.run()
        trained_accuracy = result.final_accuracy()
        small_sim.model.set_parameters(small_sim.server.current_parameters())
        path = tmp_path / "global.npz"
        save_model(small_sim.model, path, step=small_sim.server.clock)

        fresh = build_logistic(
            np.random.default_rng(99),
            in_features=small_sim.model.layers[-1].in_features,
            num_classes=small_sim.dataset.num_classes,
        )
        step = load_into_model(fresh, path)
        assert step == small_sim.server.clock
        restored = fresh.evaluate_accuracy(
            small_sim.dataset.test_x, small_sim.dataset.test_y
        )
        # Sub-sampled eval in the sim vs full test set here: allow slack.
        assert restored > 0.5 * trained_accuracy
