"""Tests for pairwise-masking secure aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.secure_aggregation import PairwiseMasker, SecureAggregationRound

DIM = 16


def _gradients(rng, workers):
    return {w: rng.normal(size=DIM) for w in workers}


class TestMasking:
    def test_masks_cancel_pairwise(self):
        workers = [0, 1]
        a = PairwiseMasker(0, workers, base_seed=7, dimension=DIM)
        b = PairwiseMasker(1, workers, base_seed=7, dimension=DIM)
        assert np.allclose(a.total_mask() + b.total_mask(), 0.0)

    def test_mask_hides_gradient(self):
        workers = [0, 1, 2]
        masker = PairwiseMasker(0, workers, base_seed=7, dimension=DIM)
        grad = np.ones(DIM)
        masked = masker.mask(grad)
        # The upload differs substantially from the plaintext gradient.
        assert np.abs(masked - grad).max() > 0.1

    def test_worker_must_participate(self):
        with pytest.raises(ValueError):
            PairwiseMasker(9, [0, 1], base_seed=7, dimension=DIM)

    def test_dimension_checked(self):
        masker = PairwiseMasker(0, [0, 1], base_seed=7, dimension=DIM)
        with pytest.raises(ValueError):
            masker.mask(np.ones(DIM + 1))


class TestRound:
    def test_exact_sum_recovery(self):
        rng = np.random.default_rng(0)
        workers = [0, 1, 2, 3, 4]
        rnd = SecureAggregationRound(workers, base_seed=11, dimension=DIM)
        grads = _gradients(rng, workers)
        for w in workers:
            rnd.submit(w, rnd.masker_for(w).mask(grads[w]))
        total = rnd.aggregate()
        assert np.allclose(total, sum(grads.values()), atol=1e-9)

    def test_dropout_recovery(self):
        """Workers 3 and 4 drop after masking; the sum of the survivors is
        still recovered exactly."""
        rng = np.random.default_rng(1)
        workers = [0, 1, 2, 3, 4]
        rnd = SecureAggregationRound(workers, base_seed=11, dimension=DIM)
        grads = _gradients(rng, workers)
        for w in [0, 1, 2]:
            rnd.submit(w, rnd.masker_for(w).mask(grads[w]))
        total = rnd.aggregate()
        expected = grads[0] + grads[1] + grads[2]
        assert np.allclose(total, expected, atol=1e-9)

    def test_double_submit_rejected(self):
        rnd = SecureAggregationRound([0, 1], base_seed=3, dimension=DIM)
        rnd.submit(0, np.zeros(DIM))
        with pytest.raises(ValueError):
            rnd.submit(0, np.zeros(DIM))

    def test_unknown_worker_rejected(self):
        rnd = SecureAggregationRound([0, 1], base_seed=3, dimension=DIM)
        with pytest.raises(ValueError):
            rnd.submit(5, np.zeros(DIM))

    def test_needs_two_participants(self):
        with pytest.raises(ValueError):
            SecureAggregationRound([0], base_seed=3, dimension=DIM)

    def test_empty_aggregate_rejected(self):
        rnd = SecureAggregationRound([0, 1], base_seed=3, dimension=DIM)
        with pytest.raises(ValueError):
            rnd.aggregate()

    @given(st.integers(2, 8), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_sum_recovery_property(self, num_workers, num_dropped):
        num_dropped = min(num_dropped, num_workers - 1)
        workers = list(range(num_workers))
        rng = np.random.default_rng(num_workers * 10 + num_dropped)
        rnd = SecureAggregationRound(workers, base_seed=5, dimension=DIM)
        grads = _gradients(rng, workers)
        active = workers[: num_workers - num_dropped]
        for w in active:
            rnd.submit(w, rnd.masker_for(w).mask(grads[w]))
        total = rnd.aggregate()
        expected = sum(grads[w] for w in active)
        assert np.allclose(total, expected, atol=1e-8)
