"""Cross-module property-based tests (hypothesis) on system invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    ExponentialDampening,
    GradientUpdate,
    InverseDampening,
    make_adasgd,
)
from repro.core.similarity import GlobalLabelTracker
from repro.devices import AllocationConfig, SimulatedDevice, get_spec
from repro.nn.metrics import f1_at_top_k


class TestServerInvariants:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=40),
        st.floats(0.001, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_weights_always_in_unit_interval(self, staleness_seq, lr):
        """Every applied scaling factor must be in (0, 1]."""
        server = make_adasgd(
            np.zeros(3), num_labels=4, learning_rate=lr, initial_tau_thres=12.0
        )
        rng = np.random.default_rng(0)
        for tau in staleness_seq:
            pull = max(0, server.clock - tau)
            counts = rng.integers(0, 5, size=4).astype(float)
            server.submit(GradientUpdate(
                gradient=rng.normal(size=3), pull_step=pull, label_counts=counts,
            ))
        weights = server.applied_weights()
        assert ((weights > 0.0) & (weights <= 1.0)).all()

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_clock_is_monotone_and_counts_updates(self, staleness_seq):
        server = make_adasgd(np.zeros(2), num_labels=2, learning_rate=0.1,
                             initial_tau_thres=12.0)
        clocks = [server.clock]
        for tau in staleness_seq:
            pull = max(0, server.clock - tau)
            server.submit(GradientUpdate(
                gradient=np.ones(2), pull_step=pull,
                label_counts=np.array([1.0, 1.0]),
            ))
            clocks.append(server.clock)
        diffs = np.diff(clocks)
        assert ((diffs == 0) | (diffs == 1)).all()
        assert clocks[-1] == len(server.applied) + server.rejected_count \
            - server.rejected_count  # clock == applied updates with K = 1

    @given(st.floats(0.5, 100.0))
    @settings(max_examples=40)
    def test_exponential_below_inverse_beyond_crossover(self, tau_thres):
        """Fig. 5 shape holds for every τ_thres: the curves cross exactly
        once, at τ_thres/2."""
        exp_d = ExponentialDampening(tau_thres)
        inv_d = InverseDampening()
        half = tau_thres / 2.0
        for factor in (0.1, 0.5, 0.9):
            tau = half * factor
            assert exp_d(tau) >= inv_d(tau) - 1e-12
        for factor in (1.1, 2.0, 10.0):
            tau = half * factor
            assert exp_d(tau) <= inv_d(tau) + 1e-12


class TestSimilarityInvariants:
    @given(
        arrays(np.float64, 6, elements=st.floats(0.0, 50.0)),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=50)
    def test_weighted_update_never_decreases_counts(self, counts, weight):
        tracker = GlobalLabelTracker(6)
        before = tracker.counts.copy()
        tracker.update(counts, weight=weight)
        assert (tracker.counts >= before).all()

    @given(arrays(np.float64, 4, elements=st.floats(0.01, 50.0)))
    @settings(max_examples=50)
    def test_self_similarity_is_one_after_bootstrap(self, counts):
        tracker = GlobalLabelTracker(4, bootstrap_samples=0.0)
        tracker.update(counts)
        assert tracker.similarity(counts) == pytest.approx(1.0)


class TestDeviceInvariants:
    @given(st.integers(1, 2000), st.sampled_from(
        ["Galaxy S7", "Honor 10", "Xperia E3", "Pixel"]
    ))
    @settings(max_examples=30, deadline=None)
    def test_costs_positive_and_battery_monotone(self, batch, name):
        device = SimulatedDevice(get_spec(name), np.random.default_rng(0))
        before = device.battery_percent_remaining
        m = device.execute(batch)
        assert m.computation_time_s > 0
        assert m.energy_percent > 0
        assert device.battery_percent_remaining <= before

    @given(st.integers(1, 4), st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_more_cores_never_slower(self, big, little):
        device = SimulatedDevice(get_spec("Galaxy S7"), np.random.default_rng(1))
        fewer = device.true_time_slope(AllocationConfig(big, 0))
        if little > 0:
            more = device.true_time_slope(AllocationConfig(big, little))
            # Adding little cores may add mixing overhead but must not be
            # worse than ~the mixing penalty alone allows.
            assert more <= fewer / 0.85
        if big < 4:
            more_big = device.true_time_slope(AllocationConfig(big + 1, 0))
            assert more_big < fewer


class TestMetricInvariants:
    @given(
        arrays(np.float64, (5, 8), elements=st.floats(-10, 10)),
        st.integers(1, 8),
    )
    @settings(max_examples=50)
    def test_f1_bounds(self, scores, k):
        rng = np.random.default_rng(0)
        truths = [set(int(x) for x in rng.choice(8, size=2, replace=False))
                  for _ in range(5)]
        value = f1_at_top_k(scores, truths, k=k)
        assert 0.0 <= value <= 1.0
