"""Tests for the elastic async serving runtime and its satellites.

Covers: the determinism contract (single-worker async on the virtual
clock is bit-identical to the synchronous gateway across all four
algorithm presets), bounded-queue shedding, the threaded executor (smoke:
correct totals, no deadlock), the elasticity controller's scale-up/-down
decisions and admission retuning, ``TokenBucket.set_rate``, the windowed
``AppliedLog`` with reservoir tail, and the service-time estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ElasticityPolicy, FleetBuilder, RuntimeSpec
from repro.core.adasgd import AppliedLog, AppliedUpdate
from repro.devices.device import DeviceFeatures
from repro.gateway import (
    AggregationCostModel,
    Gateway,
    GatewayConfig,
    TokenBucket,
)
from repro.runtime import ServiceTimeEstimator
from repro.server.protocol import TaskAssignment, TaskRequest, TaskResult


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _result(worker_id: int, gradient: np.ndarray, pull_step: int = 0) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=gradient,
        label_counts=np.ones(10),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _spec(algorithm: str, dim: int = 32):
    builder = FleetBuilder(np.zeros(dim), num_labels=10).slo(3.0)
    if algorithm == "adasgd":
        builder.algorithm("adasgd", learning_rate=0.05, initial_tau_thres=12.0)
    else:
        builder.algorithm(algorithm, learning_rate=0.05)
    return builder.spec()


# ----------------------------------------------------------------------
# Determinism: async(virtual, 1 worker) ≡ sync, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["adasgd", "dynsgd", "fedavg", "ssgd"])
def test_async_virtual_matches_sync_bit_for_bit(algorithm):
    def drive(runtime):
        gateway = Gateway.from_spec(
            2,
            _spec(algorithm),
            GatewayConfig(batch_size=4, batch_deadline_s=3.0, sync_every_s=40.0),
            runtime=runtime,
        )
        rng = np.random.default_rng(11)
        for i in range(160):
            pull = 0 if algorithm == "ssgd" else max(0, (i % 7) - 3)
            gradient = rng.normal(size=32)
            if i % 50 == 49:  # exercise the NaN-rejection path identically
                gradient = gradient.copy()
                gradient[0] = np.nan
            gateway.handle_result(_result(i % 24, gradient, pull), now=i * 0.7)
        gateway.finalize(now=160 * 0.7)
        return gateway

    sync = drive(None)
    asynchronous = drive(
        RuntimeSpec(mode="async", executor="virtual", workers=1)
    )

    assert sync.clock == asynchronous.clock
    assert sync.results_applied == asynchronous.results_applied
    assert np.array_equal(
        sync.current_parameters(), asynchronous.current_parameters()
    )
    for shard_id in sync.shards:
        a = sync.shards[shard_id].optimizer
        b = asynchronous.shards[shard_id].optimizer
        assert np.array_equal(a.current_parameters(), b.current_parameters())
        assert a.rejected_count == b.rejected_count
        for column in ("weights", "staleness", "similarity", "dampening", "steps"):
            assert np.array_equal(
                getattr(a.applied, column)(), getattr(b.applied, column)()
            ), (shard_id, column)


# ----------------------------------------------------------------------
# Bounded lanes: a full queue sheds, and the drop is counted
# ----------------------------------------------------------------------
def test_full_lane_rejects_batches():
    gateway = Gateway.from_spec(
        1,
        _spec("fedavg"),
        GatewayConfig(batch_size=4, batch_deadline_s=1e9, sync_every_s=1e9),
        cost_model=AggregationCostModel(per_flush_s=10.0, per_result_s=0.0),
        runtime=RuntimeSpec(mode="async", executor="virtual", queue_capacity=2),
    )
    rng = np.random.default_rng(0)
    # 6 batches all arriving at t=0: service is 10s each, so the lane
    # model has every prior batch still unfinished — capacity 2 admits
    # the first two, the rest are shed.
    for i in range(24):
        gateway.handle_result(_result(i, rng.normal(size=32)), now=0.0)
    runtime = gateway.runtime
    assert runtime.rejected_batches == 4
    assert runtime.rejected_results == 16
    assert gateway.results_applied == 8
    # The lane model drains with virtual time: past the backlog, new
    # batches are admitted again.
    for i in range(4):
        gateway.handle_result(_result(100 + i, rng.normal(size=32)), now=100.0)
    assert runtime.rejected_batches == 4
    assert gateway.results_applied == 12


def test_queue_depth_decays_with_virtual_time():
    gateway = Gateway.from_spec(
        1,
        _spec("fedavg"),
        GatewayConfig(batch_size=2, batch_deadline_s=1e9, sync_every_s=1e9),
        cost_model=AggregationCostModel(per_flush_s=1.0, per_result_s=0.0),
        runtime=RuntimeSpec(mode="async", executor="virtual", queue_capacity=64),
    )
    rng = np.random.default_rng(0)
    for i in range(8):
        gateway.handle_result(_result(i, rng.normal(size=32)), now=0.0)
    runtime = gateway.runtime
    # Depth/backlog queries follow virtual time monotonically (pruning a
    # lane's finished batches is destructive, like time itself).
    assert runtime.queue_depth("shard-0", 0.0) == 4
    assert runtime.backlog_s("shard-0", 1.0) == pytest.approx(3.0)
    assert runtime.queue_depth("shard-0", 2.5) == 2
    assert runtime.queue_depth("shard-0", 10.0) == 0
    assert runtime.backlog_s("shard-0", 10.0) == 0.0


# ----------------------------------------------------------------------
# Threaded executor: off-thread execution, drain, no deadlock
# ----------------------------------------------------------------------
def test_threaded_runtime_smoke():
    gateway = Gateway.from_spec(
        3,
        _spec("fedavg"),
        GatewayConfig(batch_size=4, batch_deadline_s=5.0, sync_every_s=60.0),
        runtime=RuntimeSpec(mode="async", executor="threads", workers=3),
    )
    rng = np.random.default_rng(1)
    try:
        for i in range(120):
            # Interleave the request path: it runs on the caller's thread
            # concurrently with lane jobs (per-shard guard territory).
            request = TaskRequest(
                worker_id=i % 16,
                device_model="Galaxy S7",
                features=_features(),
                label_counts=np.ones(10),
            )
            response = gateway.handle_request(request, now=i * 0.1)
            pull_step = response.pull_step if isinstance(
                response, TaskAssignment
            ) else 0
            gateway.handle_result(
                _result(i % 16, rng.normal(size=32), pull_step), now=i * 0.1
            )
        gateway.finalize(now=20.0)
        assert gateway.results_applied == 120
        assert gateway.clock > 0
        assert gateway.runtime.estimator.count > 0
    finally:
        gateway.runtime.shutdown()


def test_threaded_runtime_surfaces_job_errors_on_drain():
    from repro.runtime.executors import BatchTicket, ThreadLaneExecutor

    executor = ThreadLaneExecutor(workers=2)

    def boom():
        raise RuntimeError("lane job failed")

    ticket = BatchTicket()
    executor.submit("lane", boom, ticket)
    with pytest.raises(RuntimeError, match="lane job failed"):
        executor.drain(timeout=30.0)
    with pytest.raises(RuntimeError, match="lane job failed"):
        ticket.result(timeout=1.0)
    # Errors are consumed by the drain that reported them: a past failure
    # must not poison every later drain of a healthy executor.
    executor.drain(timeout=30.0)
    # Multiple failures surface together, none silently dropped.
    executor.submit("lane-a", boom, BatchTicket())
    executor.submit("lane-b", boom, BatchTicket())
    with pytest.raises(ExceptionGroup) as info:
        executor.drain(timeout=30.0)
    assert len(info.value.exceptions) == 2
    executor.shutdown()


# ----------------------------------------------------------------------
# Elasticity controller
# ----------------------------------------------------------------------
def _elastic_gateway(policy: ElasticityPolicy, admission_rate: float | None):
    return Gateway.from_spec(
        policy.min_shards,
        _spec("fedavg"),
        GatewayConfig(
            batch_size=4,
            batch_deadline_s=1.0,
            sync_every_s=1e9,
            admission_rate_per_s=admission_rate,
        ),
        cost_model=AggregationCostModel(per_flush_s=0.2, per_result_s=0.01),
        runtime=RuntimeSpec(mode="async", executor="virtual", autoscale=policy),
    )


def _drive_arrivals(gateway, rate_per_s, duration_s, start=0.0, dim=32):
    rng = np.random.default_rng(3)
    t = start
    step = 1.0 / rate_per_s
    while t < start + duration_s:
        request = TaskRequest(
            worker_id=int(t * rate_per_s) % 32,
            device_model="Galaxy S7",
            features=_features(),
            label_counts=np.ones(10),
        )
        response = gateway.handle_request(request, now=t)
        if isinstance(response, TaskAssignment):
            gateway.handle_result(
                _result(request.worker_id, rng.normal(size=dim), response.pull_step),
                now=t,
            )
        t += step
    return t


def test_autoscaler_scales_up_under_shedding_and_retunes_admission():
    policy = ElasticityPolicy(
        min_shards=1,
        max_shards=4,
        window_s=5.0,
        cooldown_s=5.0,
        admission_rate_per_shard=10.0,
    )
    gateway = _elastic_gateway(policy, admission_rate=10.0)
    _drive_arrivals(gateway, rate_per_s=50.0, duration_s=30.0)
    assert gateway.num_shards == 4
    actions = [event.action for event in gateway.autoscaler.events]
    assert actions.count("add") >= 2
    # Admission retuned to rate × shards on the last scaling event.
    assert gateway.bucket.rate_per_s == pytest.approx(40.0)
    assert "shed" in gateway.autoscaler.events[0].reason
    assert gateway.autoscaler.timeline()  # human-readable, non-empty


def test_autoscaler_scales_down_when_quiet():
    policy = ElasticityPolicy(
        min_shards=1,
        max_shards=4,
        window_s=5.0,
        cooldown_s=5.0,
        admission_rate_per_shard=10.0,
    )
    gateway = _elastic_gateway(policy, admission_rate=10.0)
    end = _drive_arrivals(gateway, rate_per_s=50.0, duration_s=30.0)
    assert gateway.num_shards == 4
    # A long lull observed through heartbeats shrinks the tier back.
    for k in range(1, 40):
        gateway.heartbeat(now=end + 2.5 * k)
    assert gateway.num_shards == 1
    removes = [e for e in gateway.autoscaler.events if e.action == "remove"]
    assert len(removes) == 3
    assert gateway.bucket.rate_per_s == pytest.approx(10.0)


def test_autoscaler_requires_a_shard_factory():
    spec = _spec("fedavg")
    with pytest.raises(ValueError, match="factory"):
        Gateway(
            [spec(0)],
            GatewayConfig(),
            runtime=RuntimeSpec(
                mode="async",
                autoscale=ElasticityPolicy(min_shards=1, max_shards=2),
            ),
        )


def test_manual_scale_up_and_down_roundtrip():
    gateway = Gateway.from_spec(
        2,
        _spec("adasgd"),
        GatewayConfig(batch_size=2, batch_deadline_s=1.0, sync_every_s=1e9),
        runtime=RuntimeSpec(mode="async", executor="virtual"),
    )
    rng = np.random.default_rng(5)
    for i in range(12):
        gateway.handle_result(_result(i, rng.normal(size=32)), now=float(i))
    new_id = gateway.scale_up(now=12.0)
    assert gateway.num_shards == 3
    assert new_id in gateway.shards
    # The new shard joined with the consensus model.
    assert np.allclose(
        gateway.shards[new_id].current_parameters(), gateway.current_parameters()
    )
    clock_before = gateway.clock
    applied_before = gateway.results_applied
    removed = gateway.scale_down(now=13.0)
    assert removed == new_id
    assert gateway.num_shards == 2
    # Tier-wide counters are monotone across removals: the leaver's model
    # updates and applied results stay counted (the fleet simulation's
    # eval trigger and the CLI report ride on these).
    assert gateway.clock >= clock_before
    assert gateway.results_applied >= applied_before
    for i in range(12, 24):
        gateway.handle_result(_result(i, np.random.default_rng(i).normal(size=32)),
                              now=14.0 + i)
    assert gateway.results_applied == applied_before + 12


# ----------------------------------------------------------------------
# TokenBucket.set_rate (live admission retuning)
# ----------------------------------------------------------------------
def test_set_rate_settles_elapsed_time_at_the_old_rate():
    bucket = TokenBucket(10.0, capacity=100.0)
    for _ in range(100):
        assert bucket.try_acquire(0.0)
    assert bucket.tokens == 0.0
    # 2 seconds pass, THEN the rate changes: those 2s accrued at 10/s.
    bucket.set_rate(100.0, now=2.0)
    assert bucket.tokens == pytest.approx(20.0)


def test_set_rate_up_does_not_mint_a_burst():
    bucket = TokenBucket(5.0, capacity=5.0)
    for _ in range(5):
        assert bucket.try_acquire(0.0)
    bucket.set_rate(50.0, now=0.0)
    # No instantaneous tokens: the raise only speeds up future accrual...
    assert bucket.tokens == 0.0
    assert not bucket.try_acquire(0.0)
    # ...and the burst budget scaled with the rate.
    assert bucket.capacity == pytest.approx(50.0)
    assert bucket.try_acquire(0.1)  # 50/s × 0.1s = 5 tokens


def test_set_rate_down_clamps_tokens_to_the_new_capacity():
    bucket = TokenBucket(40.0, capacity=40.0)
    bucket.try_acquire(0.0)  # initialize the refill clock
    bucket.set_rate(4.0, now=0.0)
    assert bucket.capacity == pytest.approx(4.0)
    assert bucket.tokens <= bucket.capacity


def test_set_rate_rejects_non_positive_rates():
    bucket = TokenBucket(1.0)
    with pytest.raises(ValueError):
        bucket.set_rate(0.0, now=0.0)


# ----------------------------------------------------------------------
# AppliedLog bounded-memory mode
# ----------------------------------------------------------------------
def _fill(log: AppliedLog, n: int, batch: int = 7) -> None:
    i = 0
    while i < n:
        count = min(batch, n - i)
        idx = np.arange(i, i + count, dtype=np.float64)
        log.append_batch(
            step=i,
            staleness=idx,
            similarity=idx / n,
            dampening=np.ones(count),
            weight=idx % 3,
            worker_ids=idx,
        )
        i += count


def test_windowed_log_keeps_exact_recent_rows():
    windowed = AppliedLog(window=50)
    reference = AppliedLog()
    _fill(windowed, 500)
    _fill(reference, 500)
    assert len(windowed) == 50
    assert windowed.spilled == 450
    assert windowed.total_appended == 500
    for column in ("weights", "staleness", "similarity", "dampening", "steps"):
        assert np.array_equal(
            getattr(windowed, column)(), getattr(reference, column)()[-50:]
        ), column
    # Record-oriented access stays consistent with the window.
    assert windowed[0].staleness == reference[450].staleness
    assert windowed[-1].staleness == reference[-1].staleness
    assert len(list(windowed)) == 50


def test_windowed_log_memory_stays_bounded():
    log = AppliedLog(window=64)
    _fill(log, 20_000, batch=32)
    # Physical column capacity is bounded near the window, not the run.
    assert log._step.shape[0] <= 512
    assert len(log) == 64
    assert log.spilled == 20_000 - 64


def test_windowed_log_scalar_append_spills_too():
    log = AppliedLog(window=10)
    for i in range(35):
        log.append(
            AppliedUpdate(
                step=i, staleness=float(i), similarity=1.0,
                dampening=1.0, weight=1.0, worker_id=i,
            )
        )
    assert len(log) == 10
    assert log.spilled == 25
    assert log[0].step == 25 and log[0].worker_id == 25


def test_windowed_log_reservoir_tail_statistics():
    log = AppliedLog(window=100, spill_reservoir=200, spill_seed=7)
    _fill(log, 2_000)
    sample = log.spill_sample("staleness")
    assert sample.size == 200
    # The reservoir samples the spilled past (rows 0..1899), uniformly.
    assert sample.min() < 1900 * 0.2
    assert sample.max() < 1900
    # Pooled percentile is a sane estimate of the exact full-history one.
    estimate = log.percentile("staleness", 50.0)
    assert abs(estimate - 1000.0) < 250.0
    # In-window-only percentile is exact up to the nearest-rank convention
    # (the weighted estimator does not interpolate between ranks).
    exact = log.percentile("staleness", 50.0, include_spilled=False)
    assert abs(exact - np.percentile(np.arange(1900, 2000), 50.0)) <= 1.0
    # Deterministic for a fixed seed.
    log2 = AppliedLog(window=100, spill_reservoir=200, spill_seed=7)
    _fill(log2, 2_000)
    assert np.array_equal(sample, log2.spill_sample("staleness"))


def test_unbounded_log_unchanged_and_percentile_guards():
    log = AppliedLog()
    _fill(log, 100)
    assert log.window is None
    assert log.spilled == 0
    assert log.spill_sample("weight").size == 0
    with pytest.raises(ValueError):
        log.percentile("nope", 50.0)
    with pytest.raises(ValueError):
        AppliedLog(window=0)


def test_server_applied_log_window_plumbs_through():
    from repro.core.adasgd import make_fedavg

    server = make_fedavg(np.zeros(8), learning_rate=0.1)
    assert server.applied.window is None
    from repro.core.adasgd import StalenessAwareServer
    from repro.core.dampening import ConstantDampening

    bounded = StalenessAwareServer(
        np.zeros(8),
        dampening=ConstantDampening(1.0),
        applied_log_window=16,
    )
    assert bounded.applied.window == 16


# ----------------------------------------------------------------------
# Service-time estimator
# ----------------------------------------------------------------------
def test_service_time_estimator_recovers_affine_cost():
    estimator = ServiceTimeEstimator()
    model = AggregationCostModel(per_flush_s=0.05, per_result_s=0.002)
    for size in (1, 2, 4, 8, 16, 32):
        for _ in range(3):
            estimator.observe(size, model.service_time(size))
    per_flush, per_result = estimator.coefficients()
    assert per_flush == pytest.approx(0.05, rel=1e-9)
    assert per_result == pytest.approx(0.002, rel=1e-9)
    fitted = estimator.fitted_cost_model()
    assert fitted.service_time(10) == pytest.approx(model.service_time(10))


def test_service_time_estimator_degenerate_cases():
    estimator = ServiceTimeEstimator()
    assert estimator.coefficients() is None
    assert estimator.fitted_cost_model() is None
    assert estimator.mean_service_s() == 0.0
    estimator.observe(4, 0.1)
    estimator.observe(4, 0.3)
    per_flush, per_result = estimator.coefficients()
    assert per_flush == pytest.approx(0.2)
    assert per_result == 0.0
    assert estimator.mean_service_s() == pytest.approx(0.2)
    with pytest.raises(ValueError):
        estimator.observe(0, 0.1)
    with pytest.raises(ValueError):
        estimator.observe(1, -0.1)


# ----------------------------------------------------------------------
# RuntimeSpec validation
# ----------------------------------------------------------------------
def test_runtime_spec_validation():
    with pytest.raises(ValueError):
        RuntimeSpec(mode="turbo")
    with pytest.raises(ValueError):
        RuntimeSpec(executor="fibers")
    with pytest.raises(ValueError):
        RuntimeSpec(workers=0)
    with pytest.raises(ValueError):
        RuntimeSpec(queue_capacity=0)
    with pytest.raises(ValueError):
        ElasticityPolicy(min_shards=4, max_shards=2)
    with pytest.raises(ValueError):
        ElasticityPolicy(scale_up_factor=1.0)


def test_builder_carries_runtime_spec_to_gateway():
    spec = (
        FleetBuilder(np.zeros(16))
        .algorithm("fedavg", learning_rate=0.1)
        .runtime(mode="async", executor="virtual", queue_capacity=8)
        .spec()
    )
    assert spec.runtime is not None and spec.runtime.queue_capacity == 8
    gateway = Gateway.from_spec(2, spec, GatewayConfig(batch_size=2))
    assert gateway.runtime is not None
    assert gateway.runtime.spec.queue_capacity == 8
    # An explicit argument overrides the spec's runtime.
    override = Gateway.from_spec(
        2, spec, GatewayConfig(batch_size=2),
        runtime=RuntimeSpec(mode="sync"),
    )
    assert override.runtime is None
