"""Tests for VectorSGD and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import VectorSGD, constant_lr, inverse_time_decay, step_decay


class TestSchedules:
    def test_constant(self):
        s = constant_lr(0.1)
        assert s(0) == s(100) == 0.1

    def test_inverse_time_decay_monotone(self):
        s = inverse_time_decay(1.0, 0.1)
        values = [s(t) for t in range(20)]
        assert all(a > b for a, b in zip(values, values[1:]))
        assert abs(s(0) - 1.0) < 1e-12

    def test_step_decay(self):
        s = step_decay(1.0, drop=0.5, every=10)
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25


class TestVectorSGD:
    def test_plain_step(self):
        opt = VectorSGD(learning_rate=0.5)
        params = np.array([1.0, 2.0])
        grad = np.array([1.0, -1.0])
        new = opt.step(params, grad)
        assert np.allclose(new, [0.5, 2.5])
        assert opt.step_count == 1

    def test_returns_new_array(self):
        opt = VectorSGD(learning_rate=0.1)
        params = np.ones(3)
        new = opt.step(params, np.ones(3))
        assert new is not params
        assert np.allclose(params, 1.0)

    def test_shape_mismatch_rejected(self):
        opt = VectorSGD()
        with pytest.raises(ValueError):
            opt.step(np.ones(3), np.ones(4))

    def test_momentum_accumulates(self):
        opt = VectorSGD(learning_rate=1.0, momentum=0.9)
        params = np.zeros(1)
        params = opt.step(params, np.ones(1))    # v = 1
        params = opt.step(params, np.ones(1))    # v = 1.9
        assert np.allclose(params, [-(1.0 + 1.9)])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            VectorSGD(momentum=1.0)

    def test_weight_decay_shrinks_params(self):
        opt = VectorSGD(learning_rate=0.1, weight_decay=0.5)
        params = np.array([2.0])
        new = opt.step(params, np.zeros(1))
        assert new[0] < 2.0

    def test_schedule_applied_per_step(self):
        opt = VectorSGD(learning_rate=inverse_time_decay(1.0, 1.0))
        p = np.zeros(1)
        p1 = opt.step(p, np.ones(1))          # rate 1.0
        p2 = opt.step(p1, np.ones(1))         # rate 0.5
        assert np.allclose(p1, [-1.0])
        assert np.allclose(p2, [-1.5])

    def test_reset(self):
        opt = VectorSGD(learning_rate=1.0, momentum=0.9)
        opt.step(np.zeros(1), np.ones(1))
        opt.reset()
        assert opt.step_count == 0
        out = opt.step(np.zeros(1), np.ones(1))
        assert np.allclose(out, [-1.0])

    def test_quadratic_convergence(self):
        """SGD on f(x) = ||x - c||² converges to c."""
        target = np.array([3.0, -2.0, 0.5])
        opt = VectorSGD(learning_rate=0.2)
        x = np.zeros(3)
        for _ in range(200):
            x = opt.step(x, 2.0 * (x - target))
        assert np.allclose(x, target, atol=1e-6)


class TestVectorAdam:
    def test_quadratic_convergence(self):
        from repro.nn.optim import VectorAdam

        target = np.array([3.0, -2.0, 0.5])
        opt = VectorAdam(learning_rate=0.1)
        x = np.zeros(3)
        for _ in range(500):
            x = opt.step(x, 2.0 * (x - target))
        assert np.allclose(x, target, atol=1e-2)

    def test_first_step_magnitude_is_learning_rate(self):
        """With bias correction, the first Adam step is ~lr in magnitude."""
        from repro.nn.optim import VectorAdam

        opt = VectorAdam(learning_rate=0.1)
        out = opt.step(np.zeros(1), np.array([42.0]))
        assert abs(out[0] + 0.1) < 1e-6

    def test_validation(self):
        from repro.nn.optim import VectorAdam

        with pytest.raises(ValueError):
            VectorAdam(beta1=1.0)
        with pytest.raises(ValueError):
            VectorAdam(epsilon=0.0)
        with pytest.raises(ValueError):
            VectorAdam().step(np.ones(2), np.ones(3))

    def test_reset(self):
        from repro.nn.optim import VectorAdam

        opt = VectorAdam(learning_rate=0.1)
        opt.step(np.zeros(2), np.ones(2))
        opt.reset()
        assert opt.step_count == 0
        out = opt.step(np.zeros(1), np.array([5.0]))
        assert abs(out[0] + 0.1) < 1e-6
