"""Tests for the staleness-aware server (Equation 3) and its factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adasgd import (
    GradientUpdate,
    StalenessAwareServer,
    make_adasgd,
    make_dynsgd,
    make_fedavg,
    make_ssgd,
)
from repro.core.dampening import ConstantDampening, ExponentialDampening, InverseDampening
from repro.core.similarity import GlobalLabelTracker


def _update(grad, pull_step, labels=None, worker=0):
    return GradientUpdate(
        gradient=np.asarray(grad, dtype=np.float64),
        pull_step=pull_step,
        label_counts=None if labels is None else np.asarray(labels, dtype=np.float64),
        worker_id=worker,
    )


class TestBasicUpdates:
    def test_fresh_gradient_applied_fully(self):
        server = make_ssgd(np.zeros(2), learning_rate=1.0)
        server.submit(_update([1.0, -1.0], pull_step=0))
        assert np.allclose(server.current_parameters(), [-1.0, 1.0])
        assert server.clock == 1

    def test_learning_rate_scales_update(self):
        server = make_ssgd(np.zeros(1), learning_rate=0.25)
        server.submit(_update([4.0], 0))
        assert np.allclose(server.current_parameters(), [-1.0])

    def test_clock_advances_once_per_update(self):
        server = make_ssgd(np.zeros(1), learning_rate=0.1)
        for step in range(5):
            server.submit(_update([1.0], step))
        assert server.clock == 5

    def test_shape_mismatch_rejected(self):
        server = make_ssgd(np.zeros(3))
        with pytest.raises(ValueError):
            server.submit(_update([1.0], 0))

    def test_pull_returns_copy_and_clock(self):
        server = make_ssgd(np.array([1.0, 2.0]))
        params, step = server.pull()
        params[...] = 0.0
        assert np.allclose(server.current_parameters(), [1.0, 2.0])
        assert step == 0

    def test_future_pull_step_rejected(self):
        server = make_ssgd(np.zeros(1))
        with pytest.raises(ValueError):
            server.submit(_update([1.0], pull_step=5))


class TestStalenessBookkeeping:
    def test_staleness_recorded(self):
        server = make_dynsgd(np.zeros(1), learning_rate=0.1)
        server.submit(_update([1.0], 0))   # tau 0
        server.submit(_update([1.0], 0))   # tau 1
        server.submit(_update([1.0], 0))   # tau 2
        assert list(server.applied_staleness()) == [0.0, 1.0, 2.0]

    def test_dynsgd_weights_follow_inverse(self):
        server = make_dynsgd(np.zeros(1), learning_rate=1.0)
        server.submit(_update([1.0], 0))
        server.submit(_update([1.0], 0))
        weights = server.applied_weights()
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)   # tau=1 -> 1/(1+1)

    def test_fedavg_ignores_staleness(self):
        server = make_fedavg(np.zeros(1), learning_rate=1.0)
        for _ in range(4):
            server.submit(_update([1.0], 0))
        assert np.allclose(server.applied_weights(), 1.0)

    def test_stale_update_moves_params_less_than_fresh(self):
        stale_server = make_dynsgd(np.zeros(1), learning_rate=1.0)
        stale_server.submit(_update([1.0], 0))
        before = stale_server.current_parameters()
        stale_server.submit(_update([1.0], 0))     # staleness 1
        stale_move = abs(stale_server.current_parameters() - before)[0]

        fresh_server = make_dynsgd(np.zeros(1), learning_rate=1.0)
        fresh_server.submit(_update([1.0], 0))
        before = fresh_server.current_parameters()
        fresh_server.submit(_update([1.0], 1))     # staleness 0
        fresh_move = abs(fresh_server.current_parameters() - before)[0]
        assert stale_move < fresh_move


class TestAdaptiveDampening:
    def test_bootstrap_uses_inverse(self):
        server = make_adasgd(np.zeros(1), num_labels=2, learning_rate=0.1)
        assert isinstance(server.dampening_strategy(), InverseDampening)

    def test_initial_tau_thres_short_circuits_bootstrap(self):
        server = make_adasgd(
            np.zeros(1), num_labels=2, learning_rate=0.1, initial_tau_thres=12.0
        )
        strategy = server.dampening_strategy()
        assert isinstance(strategy, ExponentialDampening)
        assert strategy.tau_thres == 12.0

    def test_switches_to_exponential_after_bootstrap(self):
        server = StalenessAwareServer(
            np.zeros(1), dampening="adaptive", bootstrap_min_samples=5,
            learning_rate=0.1,
        )
        for _ in range(5):
            server.submit(_update([1.0], server.clock))
        assert isinstance(server.dampening_strategy(), ExponentialDampening)

    def test_tau_thres_tracks_percentile(self):
        server = StalenessAwareServer(
            np.zeros(1), dampening="adaptive", bootstrap_min_samples=2,
            staleness_percentile=100.0, learning_rate=0.1,
        )
        server.submit(_update([1.0], 0))
        server.submit(_update([1.0], 0))      # tau 1
        server.submit(_update([1.0], 0))      # tau 2
        strategy = server.dampening_strategy()
        assert isinstance(strategy, ExponentialDampening)
        assert strategy.tau_thres == pytest.approx(2.0)


def _exp_server(tracker, tau_thres=12.0):
    return StalenessAwareServer(
        np.zeros(1),
        dampening=ExponentialDampening(tau_thres),
        similarity_tracker=tracker,
        learning_rate=0.1,
    )


def _advance_clock(server, steps):
    """Apply fresh dummy updates (no labels) to move the logical clock."""
    for _ in range(steps):
        server.submit(_update([0.0], server.clock))


class TestSimilarityBoosting:
    def test_full_similarity_recovers_pure_dampening(self):
        """At sim = 1 the combined rule equals Λ(τ) (Equation 3's core)."""
        tracker = GlobalLabelTracker(2)
        server = _exp_server(tracker)
        tracker.update(np.array([8.0, 2.0]))
        _advance_clock(server, 6)
        update = _update([1.0], 0, labels=[8.0, 2.0])    # staleness 6
        weight, staleness, similarity = server.weight_of(update)
        assert staleness == 6.0
        assert similarity == pytest.approx(1.0)
        assert weight == pytest.approx(ExponentialDampening(12.0)(6.0))

    def test_low_similarity_boosts_weight(self):
        """Novel labels shrink the effective staleness, raising the weight."""
        tracker = GlobalLabelTracker(2)
        server = _exp_server(tracker)
        tracker.update(np.array([10.0, 1.0]))
        _advance_clock(server, 6)
        skewed = _update([1.0], 0, labels=[0.0, 10.0])
        weight, _, similarity = server.weight_of(skewed)
        assert similarity < 1.0
        assert weight > ExponentialDampening(12.0)(6.0)
        assert weight <= 1.0

    def test_zero_similarity_gives_full_weight(self):
        """sim = 0 (unseen label) nullifies the staleness penalty entirely."""
        tracker = GlobalLabelTracker(2)
        server = _exp_server(tracker)
        tracker.update(np.array([10.0, 0.0]))
        _advance_clock(server, 48)
        novel = _update([1.0], 0, labels=[0.0, 5.0])    # staleness 48
        weight, staleness, similarity = server.weight_of(novel)
        assert staleness == 48.0
        assert similarity == 0.0
        assert weight == 1.0

    def test_weight_capped_at_one(self):
        tracker = GlobalLabelTracker(2)
        server = StalenessAwareServer(
            np.zeros(1),
            dampening=ConstantDampening(1.0),
            similarity_tracker=tracker,
            learning_rate=0.1,
        )
        tracker.update(np.array([5.0, 5.0]))
        update = _update([1.0], 0, labels=[1.0, 0.0])
        weight, _, _ = server.weight_of(update)
        assert weight == 1.0

    def test_tracker_update_scaled_by_weight(self):
        """Only effectively-used samples enter LD_global."""
        tracker = GlobalLabelTracker(2)
        server = StalenessAwareServer(
            np.zeros(1), dampening=ConstantDampening(1.0),
            similarity_tracker=tracker, learning_rate=0.1,
        )
        server.submit(_update([1.0], 0, labels=[3.0, 1.0]))   # weight 1
        assert np.allclose(tracker.counts, [3.0, 1.0])

        half_tracker = GlobalLabelTracker(2)
        half_server = StalenessAwareServer(
            np.zeros(1), dampening=ConstantDampening(0.5),
            similarity_tracker=half_tracker, learning_rate=0.1,
        )
        half_server.submit(_update([1.0], 0, labels=[4.0, 0.0]))  # weight 0.5
        assert np.allclose(half_tracker.counts, [2.0, 0.0])

    def test_bootstrap_phase_is_neutral(self):
        """Before enough effective samples, similarity must not boost."""
        tracker = GlobalLabelTracker(2, bootstrap_samples=100.0)
        server = _exp_server(tracker)
        _advance_clock(server, 48)
        novel = _update([1.0], 0, labels=[0.0, 5.0])
        weight, _, similarity = server.weight_of(novel)
        assert similarity == 1.0
        assert weight == pytest.approx(ExponentialDampening(12.0)(48.0))


class TestAggregationK:
    def test_buffer_until_k(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=3)
        assert not server.submit(_update([1.0], 0))
        assert not server.submit(_update([1.0], 0))
        assert server.submit(_update([1.0], 0))
        assert server.clock == 1
        assert np.allclose(server.current_parameters(), [-3.0])

    def test_flush_applies_partial_buffer(self):
        server = make_ssgd(np.zeros(1), learning_rate=1.0, aggregation_k=10)
        server.submit(_update([2.0], 0))
        assert server.flush()
        assert np.allclose(server.current_parameters(), [-2.0])

    def test_flush_empty_noop(self):
        server = make_ssgd(np.zeros(1))
        assert not server.flush()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            make_ssgd(np.zeros(1), aggregation_k=0)


class TestDropZeroWeight:
    def test_zero_weight_gradient_rejected(self):
        from repro.core.dampening import DropStale

        server = StalenessAwareServer(
            np.zeros(1), dampening=DropStale(0.0), learning_rate=1.0
        )
        server.submit(_update([1.0], 0))      # fresh, applied
        server.submit(_update([1.0], 0))      # stale, dropped
        assert server.clock == 1
        assert server.rejected_count == 1
        assert np.allclose(server.current_parameters(), [-1.0])
