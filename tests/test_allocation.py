"""Tests for resource allocation: FLeet's policy and the CALOREE baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.allocation import (
    CaloreeController,
    build_pht,
    execute_with_fleet_policy,
    fleet_allocation,
)
from repro.devices import AllocationConfig, SimulatedDevice, get_spec


def _device(name="Galaxy S7", seed=0):
    return SimulatedDevice(get_spec(name), np.random.default_rng(seed))


class TestFleetPolicy:
    def test_big_little_uses_big_only(self):
        alloc = fleet_allocation(_device("Galaxy S7"))
        assert alloc.big_cores == 4
        assert alloc.little_cores == 0

    def test_symmetric_uses_all_cores(self):
        alloc = fleet_allocation(_device("Xperia E3"))
        assert alloc.big_cores == 4

    def test_execute_report(self):
        report = execute_with_fleet_policy(_device(), 500)
        assert report.computation_time_s > 0
        assert report.energy_percent > 0

    def test_big_only_energy_efficient(self):
        """§2.4's claim: big cores finish so much faster that they are the
        more energy-efficient choice for compute-intensive tasks."""
        big_energy = np.median([
            _device(seed=s).execute(1000, AllocationConfig(4, 0)).energy_percent
            for s in range(9)
        ])
        little_energy = np.median([
            _device(seed=s).execute(1000, AllocationConfig(0, 4)).energy_percent
            for s in range(9)
        ])
        assert big_energy < little_energy


class TestPHT:
    def test_hull_sorted_and_nonempty(self):
        pht = build_pht(_device(), profile_batch=128)
        speeds = [e.speed for e in pht.entries]
        assert speeds == sorted(speeds)
        assert pht.trained_on == "Galaxy S7"

    def test_hull_is_pareto(self):
        pht = build_pht(_device(), profile_batch=128)
        for a in pht.entries:
            for b in pht.entries:
                if a is b:
                    continue
                # No entry strictly dominates another.
                assert not (
                    b.speed >= a.speed * 1.001
                    and b.energy_per_sample <= a.energy_per_sample * 0.999
                )

    def test_empty_pht_rejected(self):
        from repro.allocation.caloree import PerformanceHashTable

        with pytest.raises(ValueError):
            PerformanceHashTable(entries=[], trained_on="x")


class TestCaloreeController:
    def _controller(self, seed=0):
        return CaloreeController(build_pht(_device(seed=seed), profile_batch=128))

    def test_plan_validation(self):
        controller = self._controller()
        with pytest.raises(ValueError):
            controller.plan(0, 1.0)
        with pytest.raises(ValueError):
            controller.plan(100, 0.0)

    def test_plan_covers_workload(self):
        controller = self._controller()
        for deadline in [0.5, 2.0, 10.0, 100.0]:
            plan = controller.plan(1000, deadline)
            assert sum(samples for _, samples in plan) == 1000
            assert 1 <= len(plan) <= 2

    def test_loose_deadline_picks_cheap_config(self):
        controller = self._controller()
        tight = controller.plan(2000, 1.0)
        loose = controller.plan(2000, 10_000.0)
        # The loose plan uses the slowest hull entry exclusively.
        assert loose[0][0] == controller.pht.entries[0].allocation
        assert len(loose) == 1

    def test_same_device_low_error(self):
        """Table 2 row 1: training and running on the same device model."""
        device = _device(seed=1)
        controller = CaloreeController(build_pht(_device(seed=2), profile_batch=256))
        batch = 500
        deadline = 500 * get_spec("Galaxy S7").alpha_time * 1.05
        runs = [
            controller.execute(_device(seed=10 + s), batch, deadline)
            for s in range(7)
        ]
        median_error = float(np.median([r.deadline_error for r in runs]))
        assert median_error < 0.25

    def test_cross_device_error_grows(self):
        """Table 2's transfer failure: error on a different-vendor device is
        far larger than on the training device."""
        controller = CaloreeController(build_pht(_device(seed=3), profile_batch=256))
        batch = 500
        deadline = 500 * get_spec("Galaxy S7").alpha_time * 1.05

        same = np.median([
            controller.execute(_device(seed=20 + s), batch, deadline).deadline_error
            for s in range(7)
        ])
        honor = np.median([
            controller.execute(
                SimulatedDevice(get_spec("Honor 10"), np.random.default_rng(30 + s)),
                batch, deadline,
            ).deadline_error
            for s in range(7)
        ])
        assert honor > 2.0 * same

    def test_switch_overhead_charged(self):
        controller = self._controller(seed=4)
        entries = controller.pht.entries
        if len(entries) < 2:
            pytest.skip("hull degenerated to one config")
        # Pick a deadline strictly between two hull speeds to force a mix.
        workload = 2000
        mid_speed = (entries[0].speed + entries[-1].speed) / 2.0
        deadline = workload / mid_speed
        plan = controller.plan(workload, deadline)
        if len(plan) == 2:
            run = controller.execute(_device(seed=5), workload, deadline)
            assert len(run.configs_used) == 2
