"""Tests for the Online-vs-Standard FL comparison driver (Fig. 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tweets import TweetStream, TweetStreamConfig
from repro.nn import build_hashtag_rnn
from repro.simulation.online import run_online_comparison


@pytest.fixture(scope="module")
def small_stream():
    return TweetStream(TweetStreamConfig(
        num_days=4, tweets_per_hour=12, num_users=10,
        vocab_size=60, num_hashtags=16, tokens_per_tweet=6,
        mean_lifetime_hours=10.0, seed=2,
    ))


def _builder(stream):
    cfg = stream.config

    def build():
        return build_hashtag_rnn(
            np.random.default_rng(0),
            vocab_size=cfg.vocab_size,
            embed_dim=8,
            hidden_dim=12,
            num_hashtags=cfg.num_hashtags,
        )

    return build


class TestOnlineComparison:
    def test_series_aligned(self, small_stream):
        result = run_online_comparison(
            small_stream, _builder(small_stream), learning_rate=0.3,
            warmup_hours=12,
        )
        n = len(result.chunk_index)
        assert n > 10
        assert len(result.online_f1) == len(result.standard_f1) == n
        assert len(result.baseline_f1) == n

    def test_f1_in_unit_interval(self, small_stream):
        result = run_online_comparison(
            small_stream, _builder(small_stream), learning_rate=0.3,
            warmup_hours=12,
        )
        for series in (result.online_f1, result.standard_f1, result.baseline_f1):
            assert all(0.0 <= v <= 1.0 for v in series)

    def test_online_beats_standard_on_drifting_stream(self, small_stream):
        """The paper's headline claim, in miniature: hour-fresh updates beat
        day-stale updates when hashtag popularity drifts by the hour."""
        result = run_online_comparison(
            small_stream, _builder(small_stream), learning_rate=0.3,
            warmup_hours=12,
        )
        online_mean, standard_mean, _ = result.mean_f1()
        assert online_mean > standard_mean

    def test_boost_metric(self, small_stream):
        result = run_online_comparison(
            small_stream, _builder(small_stream), learning_rate=0.3,
            warmup_hours=12,
        )
        assert result.mean_boost() > 1.0

    def test_identical_cadence_identical_results(self, small_stream):
        """With the same update interval the two arms differ only in update
        semantics; at interval=1h both must produce finite sane scores."""
        result = run_online_comparison(
            small_stream, _builder(small_stream), learning_rate=0.3,
            update_hours_online=1, update_hours_standard=1, warmup_hours=12,
        )
        online_mean, standard_mean, _ = result.mean_f1()
        # Sequential vs synchronous application differ, but not wildly.
        assert abs(online_mean - standard_mean) < 0.25

    def test_invalid_intervals(self, small_stream):
        with pytest.raises(ValueError):
            run_online_comparison(
                small_stream, _builder(small_stream), update_hours_online=0
            )
