"""Tests for the differential-privacy mechanism and moments accountant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp import (
    clip_gradient,
    gaussian_mechanism,
    log_moment,
    moments_epsilon,
    noise_for_epsilon,
)


class TestClipping:
    def test_short_gradient_unchanged(self):
        g = np.array([0.3, 0.4])
        assert np.allclose(clip_gradient(g, 1.0), g)

    def test_long_gradient_scaled_to_norm(self):
        g = np.array([3.0, 4.0])
        clipped = clip_gradient(g, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        assert np.allclose(clipped / np.linalg.norm(clipped), g / 5.0)

    def test_zero_gradient(self):
        assert np.allclose(clip_gradient(np.zeros(3), 1.0), 0.0)

    def test_invalid_norm(self):
        with pytest.raises(ValueError):
            clip_gradient(np.ones(2), 0.0)


class TestGaussianMechanism:
    def test_no_noise_is_pure_clipping(self):
        g = np.array([3.0, 4.0])
        out = gaussian_mechanism(g, 1.0, 0.0, np.random.default_rng(0))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_noise_scale(self):
        rng = np.random.default_rng(1)
        samples = np.stack([
            gaussian_mechanism(np.zeros(1), clip_norm=2.0, noise_multiplier=1.5, rng=rng)
            for _ in range(4000)
        ])
        assert samples.std() == pytest.approx(3.0, rel=0.1)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(ValueError):
            gaussian_mechanism(np.ones(2), 1.0, -0.5, np.random.default_rng(0))


class TestMomentsAccountant:
    def test_log_moment_positive(self):
        assert log_moment(q=0.01, sigma=1.0, lam=4) > 0.0

    def test_log_moment_small_q_approximation(self):
        """For small q the exact leading term is λ(λ−1)/2 · q²/σ²
        (second-order expansion of E[(1 + q(e^{(2z−1)/2σ²} − 1))^λ]);
        Abadi et al.'s Lemma 3 bound q²λ(λ+1)/σ² must hold from above."""
        q, sigma, lam = 1e-3, 2.0, 8
        value = log_moment(q, sigma, lam)
        leading = q**2 * lam * (lam - 1) / (2.0 * sigma**2)
        upper = q**2 * lam * (lam + 1) / sigma**2
        assert value == pytest.approx(leading, rel=0.2)
        assert value <= upper

    def test_epsilon_decreases_with_sigma(self):
        eps_small = moments_epsilon(q=0.01, sigma=1.0, steps=1000, delta=1e-5)
        eps_large = moments_epsilon(q=0.01, sigma=4.0, steps=1000, delta=1e-5)
        assert eps_large < eps_small

    def test_epsilon_increases_with_steps(self):
        eps_short = moments_epsilon(q=0.01, sigma=2.0, steps=100, delta=1e-5)
        eps_long = moments_epsilon(q=0.01, sigma=2.0, steps=10_000, delta=1e-5)
        assert eps_long > eps_short

    def test_paper_regime_produces_single_digit_epsilon(self):
        """Paper (Fig. 11): q=100/60000, δ=1/60000², T=4000; large noise
        gives ε in the low single digits."""
        q = 100.0 / 60_000.0
        delta = 1.0 / 60_000.0**2
        eps = moments_epsilon(q=q, sigma=4.0, steps=4000, delta=delta)
        assert 0.1 < eps < 5.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            moments_epsilon(q=0.0, sigma=1.0, steps=10, delta=1e-5)
        with pytest.raises(ValueError):
            moments_epsilon(q=0.01, sigma=1.0, steps=0, delta=1e-5)
        with pytest.raises(ValueError):
            moments_epsilon(q=0.01, sigma=1.0, steps=10, delta=2.0)
        with pytest.raises(ValueError):
            log_moment(q=0.01, sigma=-1.0, lam=2)
        with pytest.raises(ValueError):
            log_moment(q=0.01, sigma=1.0, lam=0)


class TestNoiseSearch:
    def test_bisection_hits_target(self):
        q = 100.0 / 60_000.0
        delta = 1.0 / 60_000.0**2
        target = 2.0
        sigma = noise_for_epsilon(target, q, steps=2000, delta=delta)
        achieved = moments_epsilon(q, sigma, steps=2000, delta=delta)
        assert achieved <= target
        # Not over-noised: slightly less noise must violate the target.
        assert moments_epsilon(q, sigma * 0.9, steps=2000, delta=delta) > target * 0.9

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            noise_for_epsilon(1e-6, q=0.5, steps=10_000, delta=1e-10, sigma_high=2.0)
