"""Tests for evaluation metrics, especially the F1 @ top-5 of §3.1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.metrics import (
    accuracy,
    f1_at_top_k,
    per_class_accuracy,
    steps_to_accuracy,
    top_k_sets,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_partial(self):
        assert accuracy(np.array([1, 0, 3]), np.array([1, 2, 3])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))


class TestPerClassAccuracy:
    def test_values(self):
        preds = np.array([0, 0, 1, 1])
        labels = np.array([0, 1, 1, 1])
        out = per_class_accuracy(preds, labels, 3)
        assert out[0] == 1.0
        assert out[1] == pytest.approx(2 / 3)
        assert np.isnan(out[2])


class TestTopK:
    def test_top_k_selects_largest(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.3]])
        assert top_k_sets(scores, 2) == [{1, 2}]

    def test_k_clipped_to_width(self):
        scores = np.array([[1.0, 2.0]])
        assert top_k_sets(scores, 5) == [{0, 1}]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            top_k_sets(np.zeros((1, 3)), 0)


class TestF1AtTopK:
    def test_perfect_single_label(self):
        # One true hashtag, ranked first among top-5 of 10.
        scores = np.zeros((1, 10))
        scores[0, 3] = 10.0
        f1 = f1_at_top_k(scores, [{3}], k=5)
        # precision 1/5, recall 1 -> F1 = 2*(0.2*1)/(1.2)
        assert f1 == pytest.approx(2 * 0.2 / 1.2)

    def test_no_overlap_zero(self):
        scores = np.zeros((1, 10))
        scores[0, :5] = 1.0
        assert f1_at_top_k(scores, [{9}], k=5) == 0.0

    def test_empty_truth_skipped(self):
        scores = np.random.default_rng(0).normal(size=(2, 6))
        f1_with_empty = f1_at_top_k(scores, [set(), {0}], k=2)
        f1_single = f1_at_top_k(scores[1:], [{0}], k=2)
        assert f1_with_empty == pytest.approx(f1_single)

    def test_all_empty_returns_zero(self):
        assert f1_at_top_k(np.zeros((2, 4)), [set(), set()], k=2) == 0.0

    def test_count_mismatch(self):
        with pytest.raises(ValueError):
            f1_at_top_k(np.zeros((2, 4)), [{1}], k=2)

    def test_full_recall_and_precision(self):
        scores = np.zeros((1, 6))
        scores[0, [1, 2]] = 5.0
        assert f1_at_top_k(scores, [{1, 2}], k=2) == pytest.approx(1.0)


class TestStepsToAccuracy:
    def test_first_crossing(self):
        curve = np.array([0.1, 0.5, 0.7, 0.85, 0.9])
        assert steps_to_accuracy(curve, 0.8) == 3

    def test_never_reached(self):
        assert steps_to_accuracy(np.array([0.1, 0.2]), 0.8) is None

    def test_immediate(self):
        assert steps_to_accuracy(np.array([0.9, 0.95]), 0.8) == 0
