"""Tests for mini-batch sampling utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.sampling import minibatch_iterator, sample_minibatch


class TestSampleMinibatch:
    def test_sample_size(self):
        rng = np.random.default_rng(0)
        out = sample_minibatch(np.arange(100), 10, rng)
        assert out.size == 10
        assert np.unique(out).size == 10

    def test_small_dataset_returned_whole(self):
        rng = np.random.default_rng(0)
        indices = np.array([3, 7, 9])
        out = sample_minibatch(indices, 10, rng)
        assert np.array_equal(out, indices)
        # Must be a copy, not a view.
        out[0] = -1
        assert indices[0] == 3

    def test_subset_of_indices(self):
        rng = np.random.default_rng(1)
        indices = np.arange(50, 80)
        out = sample_minibatch(indices, 5, rng)
        assert np.isin(out, indices).all()

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            sample_minibatch(np.arange(10), 0, np.random.default_rng(0))


class TestMinibatchIterator:
    def test_epoch_covers_all(self):
        it = minibatch_iterator(10, 3, np.random.default_rng(2))
        seen = np.concatenate([next(it) for _ in range(4)])
        assert np.array_equal(np.sort(seen), np.arange(10))

    def test_batch_sizes(self):
        it = minibatch_iterator(10, 4, np.random.default_rng(3))
        sizes = [next(it).size for _ in range(3)]
        assert sizes == [4, 4, 2]

    def test_infinite(self):
        it = minibatch_iterator(4, 2, np.random.default_rng(4))
        for _ in range(20):
            batch = next(it)
            assert 1 <= batch.size <= 2

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            next(minibatch_iterator(10, 0, np.random.default_rng(0)))
