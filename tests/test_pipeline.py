"""Tests for the composable server pipeline (repro.api + repro.server.stages).

Covers the acceptance surface of the api_redesign: stage ordering
guarantees, veto and rewrite semantics, each built-in capability running
as a pluggable stage end to end, DP+robust stacked through the full
``FleetSimulation``, and the deprecated positional ``FleetServer``
constructor shim.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import (
    AdmissionStage,
    FleetBuilder,
    GradientPrivacyStage,
    RequestStage,
    ResultStage,
    RobustAggregationStage,
    SparseUploadDecodeStage,
    TelemetryStage,
    apply_stage_specs,
    parse_stage_spec,
)
from repro.core import make_adasgd
from repro.data import iid_split, make_mnist_like, shard_non_iid_split
from repro.devices import SimulatedDevice, get_spec
from repro.devices.device import DeviceFeatures
from repro.nn import build_logistic
from repro.profiler import IProf, SLO, collect_offline_dataset
from repro.server import (
    Controller,
    FleetServer,
    RejectionReason,
    TaskAssignment,
    TaskRejection,
    Worker,
)
from repro.server.ab_testing import ABThresholdTuner
from repro.server.protocol import TaskResult
from repro.server.sparsification import ErrorFeedbackCompressor
from repro.simulation import FleetSimConfig, FleetSimulation

DIM = 12
NUM_LABELS = 4


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _request(worker_id: int = 0):
    from repro.server.protocol import TaskRequest

    return TaskRequest(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        label_counts=np.ones(NUM_LABELS) * 8,
    )


def _result(worker_id: int, gradient, pull_step: int = 0) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=gradient,
        label_counts=np.ones(NUM_LABELS),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _builder(**algo_kwargs) -> FleetBuilder:
    return (
        FleetBuilder(np.zeros(DIM), num_labels=NUM_LABELS)
        .algorithm("fedavg", learning_rate=0.1, **algo_kwargs)
        .slo(3.0)
    )


class RecordingRequestStage(RequestStage):
    def __init__(self, name: str, log: list) -> None:
        self.name = name
        self.log = log

    def on_request(self, ctx) -> None:
        self.log.append(self.name)


class RecordingResultStage(ResultStage):
    def __init__(self, name: str, log: list) -> None:
        self.name = name
        self.log = log

    def on_result(self, update, server):
        self.log.append(self.name)
        return update


class TestOrdering:
    def test_request_stages_run_in_registration_order(self):
        log: list[str] = []
        server = (
            _builder()
            .request_stage(RecordingRequestStage("first", log))
            .request_stage(RecordingRequestStage("second", log))
            .request_stage(RecordingRequestStage("third", log))
            .build()
        )
        assert isinstance(server.handle_request(_request()), TaskAssignment)
        assert log == ["first", "second", "third"]

    def test_result_stages_run_in_registration_order(self):
        log: list[str] = []
        server = (
            _builder()
            .result_stage(RecordingResultStage("alpha", log))
            .result_stage(RecordingResultStage("beta", log))
            .build()
        )
        server.handle_result(_result(0, np.ones(DIM)))
        assert log == ["alpha", "beta"]

    def test_admission_is_always_first_unless_declared(self):
        server = _builder().telemetry().build()
        assert isinstance(server.request_stages[0], AdmissionStage)
        # Explicit declaration keeps the declared position.
        log: list[str] = []
        server = (
            _builder()
            .request_stage(RecordingRequestStage("pre", log))
            .admission(min_batch_size=1)
            .build()
        )
        assert isinstance(server.request_stages[1], AdmissionStage)
        assert not isinstance(server.request_stages[0], AdmissionStage)


class TestVetoAndRewrite:
    def test_vetoing_stage_short_circuits_the_chain(self):
        log: list[str] = []

        class VetoStage(RequestStage):
            def on_request(self, ctx):
                ctx.reject(RejectionReason.SIMILARITY_TOO_HIGH)

        server = (
            _builder()
            .request_stage(VetoStage())
            .request_stage(RecordingRequestStage("after", log))
            .build()
        )
        rejection = server.handle_request(_request())
        assert isinstance(rejection, TaskRejection)
        assert rejection.reason is RejectionReason.SIMILARITY_TOO_HIGH
        assert log == []  # the stage after the veto never ran
        assert server.rejection_stats.counts == {
            RejectionReason.SIMILARITY_TOO_HIGH: 1
        }

    def test_stage_rewrites_the_workload_bound(self):
        class ClampStage(RequestStage):
            def on_request(self, ctx):
                ctx.batch_size = min(ctx.batch_size, 5)
                ctx.annotations["clamped"] = True

        server = _builder().request_stage(ClampStage()).build()
        assignment = server.handle_request(_request())
        assert isinstance(assignment, TaskAssignment)
        assert assignment.batch_size <= 5
        assert assignment.annotations["clamped"] is True

    def test_stage_rewrites_the_gradient(self):
        class NegateStage(ResultStage):
            def on_result(self, update, server):
                return dataclasses.replace(update, gradient=-update.gradient)

        plain = _builder().build()
        negated = _builder().result_stage(NegateStage()).build()
        plain.handle_result(_result(0, np.ones(DIM)))
        negated.handle_result(_result(0, np.ones(DIM)))
        # SGD steps in opposite directions under the rewrite.
        np.testing.assert_allclose(
            negated.current_parameters(), -plain.current_parameters()
        )

    def test_absorbing_stage_applies_nothing(self):
        class DropAll(ResultStage):
            def on_result(self, update, server):
                return None  # noqa: RET501 -- None is the absorb signal

        server = _builder().result_stage(DropAll()).build()
        assert server.handle_result(_result(0, np.ones(DIM))) is False
        assert server.clock == 0
        assert server.results_applied == 0


class TestBuiltinStagesEndToEnd:
    """One end-to-end test per adapted capability (acceptance criterion)."""

    def test_dp_stage_clips_and_perturbs(self):
        server = (
            _builder().dp(clip_norm=1.0, noise_multiplier=0.0, seed=0).build()
        )
        big = 100.0 * np.ones(DIM)
        server.handle_result(_result(0, big))
        # learning_rate 0.1 and clip to L2 norm 1: the step is 0.1 * unit.
        step = -server.current_parameters()
        assert np.linalg.norm(step) == pytest.approx(0.1)
        # With noise the step differs from the pure clipped direction.
        noisy = _builder().dp(clip_norm=1.0, noise_multiplier=0.5, seed=1).build()
        noisy.handle_result(_result(0, big))
        assert not np.allclose(noisy.current_parameters(), server.current_parameters())
        stage = noisy.find_result_stage(GradientPrivacyStage)
        assert stage.steps == 1

    def test_robust_stage_filters_byzantine_gradient(self):
        server = _builder().robust("median", window=3).build()
        honest = np.ones(DIM)
        server.handle_result(_result(0, honest))
        server.handle_result(_result(1, honest))
        assert server.clock == 0  # buffered, nothing applied yet
        updated = server.handle_result(_result(2, 1000.0 * honest))  # attacker
        assert updated and server.clock == 1
        # Median kills the outlier: combined = median * K = 3 * ones,
        # step = lr * 3.
        np.testing.assert_allclose(
            server.current_parameters(), -0.3 * honest, atol=1e-12
        )

    def test_robust_stage_flush_delivers_partial_window(self):
        server = _builder().robust("median", window=5).build()
        server.handle_result(_result(0, np.ones(DIM)))
        server.handle_result(_result(1, 3.0 * np.ones(DIM)))
        assert server.clock == 0
        server.finalize()
        assert server.clock == 1
        assert server.results_applied == 1  # one combined delivery

    def test_robust_stage_batched_path_combines_each_batch(self):
        server = _builder().robust("median", window=4).build()
        batch = [_result(i, float(i + 1) * np.ones(DIM)) for i in range(3)]
        assert server.handle_result_batch(batch)
        assert server.clock == 1
        # median of 1,2,3 = 2, times K=3 → step 0.1 * 6.
        np.testing.assert_allclose(
            server.current_parameters(), -0.6 * np.ones(DIM), atol=1e-12
        )

    def test_sparse_decode_stage_end_to_end(self):
        server = _builder().sparse_uploads(fraction=0.25).build()
        compressor = ErrorFeedbackCompressor(DIM, k=3)
        gradient = np.zeros(DIM)
        gradient[:3] = (5.0, -4.0, 3.0)
        sparse = compressor.compress(gradient)
        assert server.handle_result(_result(0, sparse))
        stage = server.find_result_stage(SparseUploadDecodeStage)
        assert stage.decoded == 1
        np.testing.assert_allclose(
            server.current_parameters(), -0.1 * gradient, atol=1e-12
        )

    def test_telemetry_stage_observes_both_chains(self):
        server = _builder().telemetry().build()
        assignment = server.handle_request(_request())
        server.handle_result(_result(0, np.ones(DIM), pull_step=assignment.pull_step))
        stage = server.find_result_stage(TelemetryStage)
        assert stage is server.find_request_stage(TelemetryStage)  # shared state
        assert stage.registry.counter("pipeline.requests").value == 1
        assert stage.registry.counter("pipeline.results").value == 1
        assert stage.registry.summary("pipeline.staleness").count == 1
        assert "pipeline.requests" in stage.report()

    def test_admission_stage_thresholds(self):
        server = _builder().admission(min_batch_size=10**9).build()
        rejection = server.handle_request(_request())
        assert isinstance(rejection, TaskRejection)
        assert rejection.reason is RejectionReason.BATCH_TOO_SMALL
        assert server.rejection_stats.total == 1

    def test_ab_routing_stage_annotates_and_enforces(self):
        tuner = ABThresholdTuner()
        tuner.size_threshold = 10**9  # SIZE arm rejects everything
        server = _builder().ab_routing(tuner).build()
        size_user = next(
            uid for uid in range(64) if tuner.group_of(uid).value == "size"
        )
        sim_user = next(
            uid for uid in range(64) if tuner.group_of(uid).value == "similarity"
        )
        rejection = server.handle_request(_request(size_user))
        assert isinstance(rejection, TaskRejection)
        assignment = server.handle_request(_request(sim_user))
        assert isinstance(assignment, TaskAssignment)
        assert assignment.annotations["ab_group"] == "similarity"


def _sim_through_builder(tiny_dataset, rng, builder_stages, num_users=6):
    model = build_logistic(
        rng,
        in_features=int(np.prod(tiny_dataset.train_x.shape[1:])),
        num_classes=tiny_dataset.num_classes,
    )
    from repro.devices.catalog import fleet_specs

    training = [
        SimulatedDevice(spec, np.random.default_rng(100 + i))
        for i, spec in enumerate(fleet_specs(4, np.random.default_rng(5)))
    ]
    xs, ys = collect_offline_dataset(training, slo_seconds=3.0, kind="time")
    builder = (
        FleetBuilder(model.get_parameters(), num_labels=tiny_dataset.num_classes)
        .algorithm("adasgd", learning_rate=0.05, initial_tau_thres=12.0)
        .pretrained_profiler(xs, ys)
        .slo(3.0)
    )
    builder_stages(builder)
    server = builder.build()
    partition = iid_split(tiny_dataset.train_y, num_users, rng)
    sim = FleetSimulation(
        server=server,
        model=model,
        dataset=tiny_dataset,
        partition=partition,
        rng=rng,
        config=FleetSimConfig(horizon_s=2400.0, mean_think_time_s=15.0),
    )
    return sim, server


class TestStackedThroughFleetSimulation:
    def test_dp_and_robust_stacked_end_to_end(self, tiny_dataset):
        rng = np.random.default_rng(13)
        sim, server = _sim_through_builder(
            tiny_dataset,
            rng,
            lambda b: b.dp(clip_norm=8.0, noise_multiplier=0.001, seed=3)
            .robust("median", window=3)
            .telemetry(),
        )
        result = sim.run()
        assert result.completed > 0
        dp_stage = server.find_result_stage(GradientPrivacyStage)
        robust_stage = server.find_result_stage(RobustAggregationStage)
        telemetry = server.find_result_stage(TelemetryStage)
        # Every completed upload crossed the DP stage ...
        assert dp_stage.steps == result.completed
        # ... robust pre-combine folded them in windows of 3 (finalize
        # flushes any partial window) ...
        assert robust_stage.combined_batches >= result.completed // 3
        # ... and telemetry after robust saw only the combined stream.
        assert (
            telemetry.registry.counter("pipeline.results").value
            == robust_stage.combined_batches
        )
        # The model still learns through the stacked pipeline.
        chance = 1.0 / tiny_dataset.num_classes
        assert result.final_accuracy() > chance + 0.1

    def test_sparse_stage_negotiates_worker_compression(self, tiny_dataset):
        rng = np.random.default_rng(29)
        sim, server = _sim_through_builder(
            tiny_dataset, rng, lambda b: b.sparse_uploads(fraction=0.1)
        )
        assert sim._ship_sparse
        result = sim.run()
        stage = server.find_result_stage(SparseUploadDecodeStage)
        assert stage.decoded == result.completed > 0


class TestDeprecatedConstructorShim:
    def _stack(self):
        rng = np.random.default_rng(0)
        dataset = make_mnist_like(seed=0, train_per_class=20, test_per_class=5)
        partition = shard_non_iid_split(dataset.train_y, 4, rng)
        model = build_logistic(np.random.default_rng(1), 28 * 28, 10)
        train_devices = [
            SimulatedDevice(get_spec(n), np.random.default_rng(10 + i))
            for i, n in enumerate(["Galaxy S6", "Nexus 5"])
        ]
        xs, ys = collect_offline_dataset(train_devices, slo_seconds=3.0, kind="time")
        iprof = IProf()
        iprof.pretrain_time(xs, ys)
        optimizer = make_adasgd(
            model.get_parameters(), num_labels=10, learning_rate=0.1,
            initial_tau_thres=12.0,
        )
        data_x, data_y = dataset.subset(partition.user_indices[0])
        worker = Worker(
            0, build_logistic(np.random.default_rng(2), 28 * 28, 10),
            data_x, data_y, 10,
            SimulatedDevice(get_spec("Galaxy S7"), np.random.default_rng(20)),
            np.random.default_rng(30),
        )
        return optimizer, iprof, worker

    def test_positional_constructor_still_works(self):
        optimizer, iprof, worker = self._stack()
        server = FleetServer(
            optimizer, iprof, SLO(time_seconds=3.0), Controller(min_batch_size=1)
        )
        # The shim wrapped the controller into the first request stage.
        assert isinstance(server.request_stages[0], AdmissionStage)
        assert server.controller.min_batch_size == 1
        assignment = server.handle_request(worker.build_request())
        assert isinstance(assignment, TaskAssignment)
        assert server.handle_result(worker.execute_assignment(assignment))
        assert server.clock == 1

    def test_controller_attribute_remains_assignable(self):
        optimizer, iprof, worker = self._stack()
        server = FleetServer(optimizer, iprof, SLO(time_seconds=3.0))
        server.controller = Controller(min_batch_size=10**9)
        rejection = server.handle_request(worker.build_request())
        assert isinstance(rejection, TaskRejection)
        assert server.rejections  # bounded ring, truthy like the old list

    def test_controller_and_admission_stage_conflict(self):
        optimizer, iprof, _ = self._stack()
        with pytest.raises(ValueError):
            FleetServer(
                optimizer, iprof, SLO(time_seconds=3.0), Controller(),
                request_stages=[AdmissionStage(Controller())],
            )

    def test_rejection_ring_is_bounded(self):
        server = _builder().admission(min_batch_size=10**9).build()
        for _ in range(600):
            server.handle_request(_request())
        assert len(server.rejections) == 512  # ring capacity
        assert server.rejection_stats.total == 600  # counters keep the truth
        assert server.rejection_stats.counts[RejectionReason.BATCH_TOO_SMALL] == 600


class TestBuilderAndSpecs:
    def test_spec_builds_independent_shards(self):
        spec = _builder().telemetry().spec()
        a, b = spec(0), spec(1)
        assert a.optimizer is not b.optimizer
        assert a.find_result_stage(TelemetryStage) is not b.find_result_stage(
            TelemetryStage
        )

    def test_builder_requires_parameters(self):
        with pytest.raises(ValueError):
            FleetBuilder().build()

    def test_adasgd_requires_num_labels(self):
        with pytest.raises(ValueError):
            FleetBuilder(np.zeros(4)).algorithm("adasgd").build()

    def test_parse_stage_spec(self):
        name, options = parse_stage_spec("dp:clip=2.0,noise=0.05,seed=3")
        assert name == "dp"
        assert options == {"clip": 2.0, "noise": 0.05, "seed": 3}
        assert parse_stage_spec("telemetry") == ("telemetry", {})
        with pytest.raises(ValueError):
            parse_stage_spec("dp:clip")

    def test_apply_stage_specs_builds_the_declared_chain(self):
        builder = _builder()
        apply_stage_specs(
            builder, ["dp:noise=0.0", "robust:rule=median,window=2", "telemetry"]
        )
        server = builder.build()
        names = [s.name for s in server.result_stages]
        assert names == ["dp", "robust", "telemetry"]

    def test_apply_stage_specs_rejects_unknown(self):
        with pytest.raises(ValueError):
            apply_stage_specs(_builder(), ["warp-drive"])
        with pytest.raises(ValueError):
            apply_stage_specs(_builder(), ["dp:bogus_option=1"])


class TestPipelineHardening:
    """Regression tests for review findings on the pipeline surface."""

    def test_robust_batched_path_buffers_single_results(self):
        # A batch_size=1 gateway lane must not let lone gradients bypass
        # the robust rule: sub-2-item batches stay buffered.
        server = _builder().robust("median", window=3).build()
        assert not server.handle_result_batch([_result(0, np.ones(DIM))])
        assert server.clock == 0  # buffered, not applied raw
        assert server.handle_result_batch([_result(1, 3.0 * np.ones(DIM))])
        assert server.clock == 1
        # median(1, 3) = 2 per coordinate, times K=2 -> step 0.1 * 4.
        np.testing.assert_allclose(
            server.current_parameters(), -0.4 * np.ones(DIM), atol=1e-12
        )

    def test_sparse_upload_without_decode_stage_rejected_before_profiler(self):
        reports = []

        class CountingProf(IProf):
            def report(self, *args, **kwargs):
                reports.append(args)
                return super().report(*args, **kwargs)

        server = _builder().profiler(CountingProf).build()
        sparse = ErrorFeedbackCompressor(DIM, k=3).compress(
            np.arange(DIM, dtype=float)
        )
        with pytest.raises(ValueError, match="sparse"):
            server.handle_result(_result(0, sparse))
        with pytest.raises(ValueError, match="sparse"):
            server.handle_result_batch([_result(0, sparse)])
        assert not reports  # rejected before any profiler state changed
        assert server.results_applied == 0

    def test_spec_stamped_dp_shards_draw_independent_noise(self):
        spec = _builder().dp(clip_norm=10.0, noise_multiplier=1.0, seed=0).spec()
        a, b = spec.build(), spec.build()
        a.handle_result(_result(0, np.ones(DIM)))
        b.handle_result(_result(0, np.ones(DIM)))
        assert not np.allclose(a.current_parameters(), b.current_parameters())

    def test_spec_stamped_admission_controllers_do_not_share_state(self):
        controller = Controller(min_batch_size=1)
        spec = _builder().admission(controller).spec()
        a, b = spec.build(), spec.build()
        assert a.controller is not controller
        assert a.controller is not b.controller

    def test_gateway_advertises_and_decodes_sparse_uploads(self):
        from repro.gateway import Gateway, GatewayConfig

        spec = _builder().sparse_uploads(fraction=0.25).spec()
        gateway = Gateway.from_spec(2, spec, GatewayConfig(batch_size=2))
        stage = gateway.find_result_stage(SparseUploadDecodeStage)
        assert stage is not None and stage.fraction == 0.25

        gradient = np.zeros(DIM)
        gradient[:3] = (5.0, -4.0, 3.0)
        for worker_id in range(4):
            sparse = ErrorFeedbackCompressor(DIM, k=3).compress(gradient)
            gateway.handle_result(_result(worker_id, sparse), now=float(worker_id))
        gateway.finalize()
        decoded = sum(
            shard.find_result_stage(SparseUploadDecodeStage).decoded
            for shard in gateway.shards.values()
        )
        assert decoded == 4
        assert gateway.results_applied == 4
