"""Tests for I-Prof, the cold-start model, PA regression and MAUI."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.devices import SimulatedDevice, get_spec
from repro.profiler import (
    SLO,
    ColdStartModel,
    IProf,
    MauiProfiler,
    PassiveAggressiveRegressor,
    collect_offline_dataset,
    epsilon_insensitive_loss,
)


class TestPassiveAggressive:
    def test_no_update_within_epsilon(self):
        pa = PassiveAggressiveRegressor(np.array([1.0, 0.0]), epsilon=0.5)
        theta_before = pa.theta.copy()
        loss = pa.update(np.array([1.0, 1.0]), alpha=1.3)   # residual 0.3 < eps
        assert loss == 0.0
        assert np.array_equal(pa.theta, theta_before)

    def test_update_lands_within_epsilon(self):
        """One PA step corrects the prediction to exactly the ε boundary."""
        pa = PassiveAggressiveRegressor(np.zeros(3), epsilon=0.1)
        x = np.array([1.0, 2.0, -1.0])
        pa.update(x, alpha=3.0)
        assert abs(pa.predict(x) - 3.0) <= 0.1 + 1e-9

    def test_loss_definition(self):
        theta = np.array([2.0])
        assert epsilon_insensitive_loss(theta, np.array([1.0]), 2.05, 0.1) == 0.0
        assert epsilon_insensitive_loss(theta, np.array([1.0]), 3.0, 0.1) == pytest.approx(0.9)

    def test_shape_mismatch(self):
        pa = PassiveAggressiveRegressor(np.zeros(2))
        with pytest.raises(ValueError):
            pa.predict(np.zeros(3))

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PassiveAggressiveRegressor(np.zeros(2), epsilon=-1.0)

    def test_zero_feature_vector_no_crash(self):
        pa = PassiveAggressiveRegressor(np.zeros(2), epsilon=0.0)
        loss = pa.update(np.zeros(2), alpha=1.0)
        assert loss == 1.0   # cannot correct, but must not divide by zero

    @given(
        arrays(np.float64, 4, elements=st.floats(-5, 5)),
        st.floats(-10, 10),
    )
    @settings(max_examples=80)
    def test_post_update_residual_property(self, x, alpha):
        pa = PassiveAggressiveRegressor(np.zeros(4), epsilon=0.05)
        pa.update(x, alpha)
        if np.linalg.norm(x) > 1e-6:
            assert abs(pa.predict(x) - alpha) <= 0.05 + 1e-6

    def test_converges_on_stationary_target(self):
        rng = np.random.default_rng(0)
        true_theta = np.array([0.5, -1.0, 2.0])
        pa = PassiveAggressiveRegressor(np.zeros(3), epsilon=0.01)
        for _ in range(200):
            x = rng.normal(size=3)
            pa.update(x, float(x @ true_theta))
        x_test = rng.normal(size=3)
        assert abs(pa.predict(x_test) - float(x_test @ true_theta)) < 0.2


class TestColdStart:
    def test_fit_recovers_linear_model(self):
        rng = np.random.default_rng(1)
        theta = np.array([1.0, -2.0, 0.5])
        xs = rng.normal(size=(50, 3))
        ys = xs @ theta
        model = ColdStartModel(3)
        model.fit(xs, ys)
        # Ridge regularization biases theta slightly; predictions must still
        # track the generating model closely.
        assert np.allclose(model.theta, theta, atol=0.05)
        assert model.predict(np.array([1.0, 1.0, 1.0])) == pytest.approx(-0.5, abs=0.05)

    def test_min_slope_seen_tracked(self):
        model = ColdStartModel(2)
        model.fit(np.array([[1.0, 1.0], [2.0, 1.0]]), np.array([3.0, 5.0]))
        assert model.min_slope_seen == 3.0
        model.append(np.array([1.0, 0.0]), 0.5)
        assert model.min_slope_seen == 0.5

    def test_periodic_refit(self):
        rng = np.random.default_rng(2)
        model = ColdStartModel(2, refit_every=10)
        xs = rng.normal(size=(20, 2))
        model.fit(xs, xs @ np.array([1.0, 1.0]))
        # Append data from a different generating model.
        for _ in range(10):
            x = rng.normal(size=2)
            model.append(x, float(x @ np.array([3.0, 3.0])))
        # After refit the model has moved toward the new slope.
        assert model.theta.sum() > 2.0

    def test_validation(self):
        model = ColdStartModel(3)
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(5))
        with pytest.raises(ValueError):
            model.predict(np.zeros(2))
        with pytest.raises(ValueError):
            model.append(np.zeros(2), 1.0)

    def test_collect_offline_dataset(self):
        devices = [
            SimulatedDevice(get_spec("Galaxy S6"), np.random.default_rng(3)),
            SimulatedDevice(get_spec("Nexus 5"), np.random.default_rng(4)),
        ]
        xs, ys = collect_offline_dataset(devices, slo_seconds=2.0, kind="time")
        assert xs.shape[1] == 6
        assert xs.shape[0] == ys.shape[0] > 4
        assert (ys > 0).all()

    def test_collect_energy_dataset(self):
        devices = [SimulatedDevice(get_spec("Pixel"), np.random.default_rng(5))]
        xs, ys = collect_offline_dataset(devices, slo_seconds=2.0, kind="energy")
        assert (ys > 0).all()
        with pytest.raises(ValueError):
            collect_offline_dataset(devices, 2.0, kind="watts")


def _pretrained_iprof(seed=0, **kwargs):
    train = [
        SimulatedDevice(get_spec(name), np.random.default_rng(seed + i))
        for i, name in enumerate(
            ["Galaxy S6", "Nexus 5", "MotoG3", "Pixel", "HTC U11"]
        )
    ]
    xs, ys = collect_offline_dataset(train, slo_seconds=3.0, kind="time")
    iprof = IProf(**kwargs)
    iprof.pretrain_time(xs, ys)
    for d in train:
        d.reset()
    xs_e, ys_e = collect_offline_dataset(train, slo_seconds=3.0, kind="energy")
    iprof.pretrain_energy(xs_e, ys_e)
    return iprof


class TestIProf:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO(time_seconds=-1.0)
        with pytest.raises(ValueError):
            SLO(time_seconds=None, energy_percent=None)

    def test_recommend_positive_batch(self):
        iprof = _pretrained_iprof()
        device = SimulatedDevice(get_spec("Galaxy S7"), np.random.default_rng(9))
        decision = iprof.recommend(
            "Galaxy S7", device.features().as_vector(), SLO(time_seconds=3.0)
        )
        assert decision.batch_size >= 1
        assert not decision.used_personalized

    def test_personalization_improves_with_feedback(self):
        """After a few request/report rounds the SLO error must shrink —
        the Fig. 12(c) adaptation effect."""
        iprof = _pretrained_iprof()
        device = SimulatedDevice(get_spec("Xperia E3"), np.random.default_rng(10))
        slo = SLO(time_seconds=3.0)
        errors = []
        for _ in range(8):
            features = device.features().as_vector()
            decision = iprof.recommend("Xperia E3", features, slo)
            m = device.execute(decision.batch_size)
            iprof.report(
                "Xperia E3", features, decision.batch_size,
                computation_time_s=m.computation_time_s,
            )
            errors.append(abs(m.computation_time_s - 3.0))
            device.idle(60.0)
        assert np.mean(errors[4:]) < max(errors[0], 0.5)
        assert iprof.recommend("Xperia E3", features, slo).used_personalized

    def test_dual_slo_takes_minimum(self):
        iprof = _pretrained_iprof()
        device = SimulatedDevice(get_spec("Galaxy S7"), np.random.default_rng(11))
        features = device.features().as_vector()
        both = iprof.recommend(
            "Galaxy S7", features, SLO(time_seconds=3.0, energy_percent=0.075)
        )
        time_only = iprof.recommend("Galaxy S7", features, SLO(time_seconds=3.0))
        energy_only = iprof.recommend(
            "Galaxy S7", features, SLO(time_seconds=None, energy_percent=0.075)
        )
        assert both.batch_size == min(time_only.batch_size, energy_only.batch_size)

    def test_personalize_false_uses_cold_start_only(self):
        iprof = _pretrained_iprof(personalize=False)
        device = SimulatedDevice(get_spec("Galaxy S7"), np.random.default_rng(12))
        features = device.features().as_vector()
        iprof.report("Galaxy S7", features, 100, computation_time_s=1.0)
        decision = iprof.recommend("Galaxy S7", features, SLO(time_seconds=3.0))
        assert not decision.used_personalized

    def test_report_validation(self):
        iprof = _pretrained_iprof()
        with pytest.raises(ValueError):
            iprof.report("X", np.zeros(6), 0, computation_time_s=1.0)


class TestMaui:
    def test_global_slope_fit(self):
        maui = MauiProfiler()
        maui.pretrain_time(np.array([10, 20, 30]), np.array([1.0, 2.0, 3.0]))
        decision = maui.recommend("any", np.zeros(6), SLO(time_seconds=3.0))
        assert decision.batch_size == pytest.approx(30, abs=1)

    def test_ignores_device_features(self):
        maui = MauiProfiler()
        maui.pretrain_time(np.array([10]), np.array([1.0]))
        a = maui.recommend("fast", np.ones(6) * 100.0, SLO(time_seconds=3.0))
        b = maui.recommend("slow", np.zeros(6), SLO(time_seconds=3.0))
        assert a.batch_size == b.batch_size

    def test_online_updates_shift_slope(self):
        maui = MauiProfiler()
        maui.pretrain_time(np.array([10]), np.array([1.0]))
        before = maui.recommend("d", np.zeros(6), SLO(time_seconds=3.0)).batch_size
        for _ in range(50):
            maui.report("d", np.zeros(6), 10, computation_time_s=4.0)
        after = maui.recommend("d", np.zeros(6), SLO(time_seconds=3.0)).batch_size
        assert after < before

    def test_energy_path(self):
        maui = MauiProfiler()
        maui.pretrain_energy(np.array([100]), np.array([0.05]))
        decision = maui.recommend(
            "d", np.zeros(6), SLO(time_seconds=None, energy_percent=0.075)
        )
        assert decision.batch_size == pytest.approx(150, abs=2)

    def test_report_validation(self):
        with pytest.raises(ValueError):
            MauiProfiler().report("d", np.zeros(6), 0, computation_time_s=1.0)
