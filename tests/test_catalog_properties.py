"""Catalog-wide consistency checks over every simulated device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import CATALOG, SimulatedDevice, get_spec


@pytest.mark.parametrize("name", sorted(CATALOG))
class TestEveryDevice:
    def test_spec_sanity(self, name):
        spec = get_spec(name)
        assert spec.alpha_time > 0
        assert spec.alpha_energy > 0
        assert spec.battery_mwh > 1000
        assert spec.big.num_cores >= 1
        assert 0 < spec.big.perf <= 1.5
        if spec.little is not None:
            assert spec.little.perf < spec.big.perf
            assert spec.little.power_w < spec.big.power_w

    def test_executes_and_measures(self, name):
        device = SimulatedDevice(get_spec(name), np.random.default_rng(0))
        m = device.execute(200)
        assert m.computation_time_s > 0
        assert 0 < m.energy_percent < 5.0

    def test_feature_vector_finite(self, name):
        device = SimulatedDevice(get_spec(name), np.random.default_rng(1))
        vec = device.features().as_vector()
        assert np.isfinite(vec).all()
        assert vec.shape == (6,)

    def test_slope_roughly_matches_spec(self, name):
        """Measured cold slope within noise of the catalog ground truth."""
        spec = get_spec(name)
        times = []
        for seed in range(7):
            device = SimulatedDevice(spec, np.random.default_rng(seed))
            times.append(device.execute(400).computation_time_s / 400)
        measured = float(np.median(times))
        assert measured == pytest.approx(spec.alpha_time, rel=0.25)

    def test_default_allocation_valid(self, name):
        device = SimulatedDevice(get_spec(name), np.random.default_rng(2))
        alloc = device.default_allocation()
        assert alloc.big_cores <= device.spec.big.num_cores
        assert alloc in device.available_allocations()


class TestCatalogGlobal:
    def test_generational_speed_trend(self):
        """Newer flagship phones are faster than older ones on average."""
        old = [s.alpha_time for s in CATALOG.values() if s.year <= 2014]
        new = [s.alpha_time for s in CATALOG.values() if s.year >= 2017]
        assert np.mean(new) < np.mean(old)

    def test_slope_spread_covers_paper_range(self):
        """Fig. 4's heterogeneity: >10x spread between extremes."""
        slopes = [s.alpha_time for s in CATALOG.values()]
        assert max(slopes) / min(slopes) > 10.0

    def test_all_26_models_present(self):
        assert len(CATALOG) == 26
