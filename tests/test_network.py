"""Tests for the mobile network substrate (repro.network)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    HSPA_3G,
    LTE_4G,
    WIFI,
    EwmaThroughputPredictor,
    HandoverChain,
    HarmonicMeanPredictor,
    LinkProfile,
    NetworkConditions,
    NetworkInterface,
    SignalProcess,
    ThroughputSample,
    get_profile,
    prediction_error,
)


class TestLinkProfile:
    def test_lookup_by_name(self):
        assert get_profile("wifi") is WIFI
        assert get_profile("4g") is LTE_4G
        assert get_profile("3g") is HSPA_3G

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown link profile"):
            get_profile("5g")

    def test_one_way_time_increases_with_payload(self):
        small = LTE_4G.one_way_seconds(1_000, uplink=False)
        large = LTE_4G.one_way_seconds(1_000_000, uplink=False)
        assert large > small > LTE_4G.rtt_s

    def test_uplink_slower_than_downlink(self):
        payload = 500_000
        assert LTE_4G.one_way_seconds(payload, uplink=True) > LTE_4G.one_way_seconds(
            payload, uplink=False
        )

    def test_zero_payload_costs_only_rtt(self):
        assert LTE_4G.one_way_seconds(0, uplink=False) == pytest.approx(LTE_4G.rtt_s)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            LTE_4G.one_way_seconds(-1, uplink=False)

    def test_paper_calibration_4g_vs_3g_round_trip(self):
        """§3.1: ~123 k-param model round trip ≈ 1.1 s on 4G, ≈ 3.8 s on 3G.

        The wire size of the float32 model is ≈ 0.49 MB; deflate shaves it
        to roughly 0.3-0.45 MB depending on entropy.  At nominal signal the
        profile times must bracket the paper's figures within ~2×.
        """
        wire_bytes = 123_330 * 4  # float32, uncompressed upper bound
        rt_4g = LTE_4G.one_way_seconds(wire_bytes, False) + LTE_4G.one_way_seconds(
            wire_bytes, True
        )
        rt_3g = HSPA_3G.one_way_seconds(wire_bytes, False) + HSPA_3G.one_way_seconds(
            wire_bytes, True
        )
        assert 0.5 <= rt_4g <= 2.2
        assert 2.0 <= rt_3g <= 7.0
        assert rt_3g > rt_4g

    def test_cellular_is_metered_wifi_is_not(self):
        assert LTE_4G.metered and HSPA_3G.metered
        assert not WIFI.metered

    def test_tail_energy_dominates_small_transfers(self):
        """Altamimi et al.: the cellular radio tail dwarfs tiny payloads."""
        tiny_active = 0.01
        tail = LTE_4G.tail_power_w * LTE_4G.tail_seconds
        active = LTE_4G.transfer_power_w * tiny_active
        assert LTE_4G.transfer_energy_mwh(tiny_active) == pytest.approx(
            (tail + active) * 1000.0 / 3600.0
        )
        assert tail > active

    def test_wifi_has_no_tail(self):
        assert WIFI.transfer_energy_mwh(0.0) == 0.0

    def test_invalid_profile_construction(self):
        with pytest.raises(ValueError):
            LinkProfile("bad", -1.0, 1.0, 0.1, 1.0, 0.0, 0.0, True)
        with pytest.raises(ValueError):
            LinkProfile("bad", 1.0, 1.0, -0.1, 1.0, 0.0, 0.0, True)
        with pytest.raises(ValueError):
            LinkProfile("bad", 1.0, 1.0, 0.1, -1.0, 0.0, 0.0, True)


class TestSignalProcess:
    def test_quality_bounded(self, rng):
        process = SignalProcess(rng)
        samples = [process.quality(t) for t in np.linspace(0, 7200, 200)]
        assert all(process.floor <= q <= 1.0 for q in samples)

    def test_deterministic_per_seed(self):
        a = SignalProcess(np.random.default_rng(3))
        b = SignalProcess(np.random.default_rng(3))
        times = [0.0, 100.0, 5000.0, 123.4]
        assert [a.quality(t) for t in times] == [b.quality(t) for t in times]

    def test_out_of_order_queries_consistent(self, rng):
        process = SignalProcess(rng)
        late = process.quality(3600.0)
        early = process.quality(60.0)
        assert process.quality(3600.0) == late
        assert process.quality(60.0) == early

    def test_interpolation_continuous(self, rng):
        process = SignalProcess(rng, grid_s=30.0)
        # Adjacent queries 1 ms apart differ by at most the grid step's slope.
        delta = abs(process.quality(45.0) - process.quality(45.001))
        assert delta < 0.01

    def test_negative_time_rejected(self, rng):
        with pytest.raises(ValueError):
            SignalProcess(rng).quality(-1.0)

    def test_mean_reversion_pulls_towards_mean(self, rng):
        process = SignalProcess(rng, mean=0.8, volatility=0.05)
        samples = np.array([process.quality(t) for t in np.arange(0, 86400, 60)])
        assert abs(samples.mean() - 0.8) < 0.15

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            SignalProcess(rng, mean=0.0)
        with pytest.raises(ValueError):
            SignalProcess(rng, reversion=0.0)
        with pytest.raises(ValueError):
            SignalProcess(rng, volatility=-0.1)
        with pytest.raises(ValueError):
            SignalProcess(rng, floor=1.0)
        with pytest.raises(ValueError):
            SignalProcess(rng, grid_s=0.0)


class TestHandoverChain:
    def test_initial_link(self, rng):
        chain = HandoverChain(rng, initial=WIFI)
        assert chain.link_at(0.0) is WIFI

    def test_links_are_valid_profiles(self, rng):
        chain = HandoverChain(rng, mean_dwell_s=120.0)
        names = {chain.link_at(t).name for t in np.linspace(0, 86400, 300)}
        assert names <= {"wifi", "4g", "3g"}
        assert len(names) >= 2  # with 12 min dwell a day sees several links

    def test_deterministic_per_seed(self):
        a = HandoverChain(np.random.default_rng(9), mean_dwell_s=300.0)
        b = HandoverChain(np.random.default_rng(9), mean_dwell_s=300.0)
        times = [0.0, 500.0, 10_000.0, 250.0]
        assert [a.link_at(t).name for t in times] == [b.link_at(t).name for t in times]

    def test_piecewise_constant(self, rng):
        chain = HandoverChain(rng, mean_dwell_s=600.0)
        # Two queries inside the same short interval usually hit one segment;
        # verify consistency by re-querying the exact same instant.
        assert chain.link_at(100.0).name == chain.link_at(100.0).name

    def test_negative_time_rejected(self, rng):
        with pytest.raises(ValueError):
            HandoverChain(rng).link_at(-0.1)

    def test_invalid_dwell(self, rng):
        with pytest.raises(ValueError):
            HandoverChain(rng, mean_dwell_s=0.0)


class TestThroughputPredictors:
    def test_sample_validation(self):
        with pytest.raises(ValueError):
            ThroughputSample(payload_bytes=0, seconds=1.0)
        with pytest.raises(ValueError):
            ThroughputSample(payload_bytes=100, seconds=0.0)

    def test_sample_mbps(self):
        sample = ThroughputSample(payload_bytes=1_250_000, seconds=1.0)
        assert sample.mbps == pytest.approx(10.0)

    def test_ewma_converges_to_stationary_rate(self):
        predictor = EwmaThroughputPredictor(alpha=0.3, prior_mbps=1.0)
        for _ in range(60):
            predictor.observe(ThroughputSample(1_250_000, 1.0))  # 10 Mbps
        assert predictor.predicted_mbps() == pytest.approx(10.0, rel=1e-3)

    def test_ewma_prior_used_before_observations(self):
        predictor = EwmaThroughputPredictor(prior_mbps=5.0)
        assert predictor.predicted_mbps() == 5.0
        assert predictor.predict_seconds(625_000) == pytest.approx(1.0)

    def test_harmonic_mean_below_arithmetic_on_spiky_rates(self):
        predictor = HarmonicMeanPredictor(window=10)
        rates_mbps = [1.0, 1.0, 1.0, 100.0]
        for rate in rates_mbps:
            predictor.observe(ThroughputSample(int(rate * 125_000), 1.0))
        arithmetic = float(np.mean(rates_mbps))
        assert predictor.predicted_mbps() < arithmetic
        assert predictor.predicted_mbps() == pytest.approx(
            len(rates_mbps) / sum(1.0 / r for r in rates_mbps)
        )

    def test_harmonic_window_evicts_old_samples(self):
        predictor = HarmonicMeanPredictor(window=2)
        predictor.observe(ThroughputSample(125_000, 1.0))  # 1 Mbps
        predictor.observe(ThroughputSample(1_250_000, 1.0))  # 10 Mbps
        predictor.observe(ThroughputSample(1_250_000, 1.0))  # 10 Mbps
        assert predictor.predicted_mbps() == pytest.approx(10.0)

    def test_predict_seconds_scales_linearly(self):
        predictor = EwmaThroughputPredictor(prior_mbps=8.0)
        assert predictor.predict_seconds(2_000_000) == pytest.approx(
            2 * predictor.predict_seconds(1_000_000)
        )

    def test_prediction_error(self):
        assert prediction_error(1.5, 1.0) == pytest.approx(0.5)
        assert prediction_error(1.0, 1.0) == 0.0
        with pytest.raises(ValueError):
            prediction_error(1.0, 0.0)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            EwmaThroughputPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaThroughputPredictor(prior_mbps=0.0)
        with pytest.raises(ValueError):
            HarmonicMeanPredictor(window=0)

    @given(st.lists(st.floats(0.5, 80.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_harmonic_mean_bounded_by_observed_rates(self, rates):
        predictor = HarmonicMeanPredictor(window=64)
        for rate in rates:
            predictor.observe(ThroughputSample(int(rate * 125_000) + 1, 1.0))
        estimate = predictor.predicted_mbps()
        assert min(rates) * 0.99 <= estimate <= max(rates) * 1.01

    @given(st.lists(st.floats(0.5, 80.0), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_ewma_bounded_by_prior_and_observed(self, rates):
        prior = 5.0
        predictor = EwmaThroughputPredictor(alpha=0.4, prior_mbps=prior)
        for rate in rates:
            predictor.observe(ThroughputSample(int(rate * 125_000) + 1, 1.0))
        low = min(min(rates), prior)
        high = max(max(rates), prior)
        assert low * 0.98 <= predictor.predicted_mbps() <= high * 1.02


class TestNetworkInterface:
    def _interface(self, seed=0, link=LTE_4G, noise=0.0):
        rng = np.random.default_rng(seed)
        conditions = NetworkConditions(rng, fixed_link=link)
        return NetworkInterface(conditions, rng, noise_std=noise)

    def test_transfer_records_outcome(self):
        interface = self._interface()
        outcome = interface.transfer(500_000, time_s=0.0, uplink=False)
        assert outcome.link_name == "4g"
        assert outcome.seconds > 0
        assert outcome.energy_mwh > 0
        assert interface.transfers == [outcome]

    def test_round_trip_orders_pull_before_push(self):
        interface = self._interface()
        round_trip = interface.round_trip(500_000, 500_000, time_s=10.0)
        assert round_trip.seconds == pytest.approx(
            round_trip.down.seconds + round_trip.up.seconds
        )
        assert round_trip.energy_mwh == pytest.approx(
            round_trip.down.energy_mwh + round_trip.up.energy_mwh
        )

    def test_weak_signal_slows_transfer(self):
        strong = self._interface()
        weak = self._interface()
        strong.conditions.signal._samples = [1.0, 1.0]
        weak.conditions.signal._samples = [0.25, 0.25]
        fast = strong.transfer(1_000_000, 0.0, uplink=False).seconds
        slow = weak.transfer(1_000_000, 0.0, uplink=False).seconds
        assert slow > fast * 2

    def test_unmetered_check_follows_link(self):
        assert self._interface(link=WIFI).is_unmetered(0.0)
        assert not self._interface(link=HSPA_3G).is_unmetered(0.0)

    def test_total_energy_accumulates(self):
        interface = self._interface()
        interface.transfer(100_000, 0.0, uplink=False)
        interface.transfer(100_000, 5.0, uplink=True)
        assert interface.total_energy_mwh() == pytest.approx(
            sum(o.energy_mwh for o in interface.transfers)
        )

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            self._interface().transfer(-1, 0.0, uplink=False)

    def test_noise_is_multiplicative_lognormal(self):
        noisy = self._interface(seed=1, noise=0.3)
        times = [
            noisy.transfer(1_000_000, float(t), uplink=False).seconds
            for t in range(30)
        ]
        assert np.std(times) > 0.0

    def test_deterministic_per_seed(self):
        a = self._interface(seed=42, noise=0.2)
        b = self._interface(seed=42, noise=0.2)
        assert a.transfer(300_000, 0.0, False).seconds == pytest.approx(
            b.transfer(300_000, 0.0, False).seconds
        )

    def test_predictor_learns_interface_throughput(self):
        """End to end: harmonic predictor tracks the simulated link."""
        interface = self._interface(seed=7, noise=0.1)
        predictor = HarmonicMeanPredictor(window=30)
        payload = 1_000_000
        for i in range(30):
            outcome = interface.transfer(payload, float(i * 10), uplink=False)
            predictor.observe(ThroughputSample(payload, outcome.seconds))
        predicted = predictor.predict_seconds(payload)
        actual = interface.transfer(payload, 400.0, uplink=False).seconds
        assert prediction_error(predicted, actual) < 1.0
