"""Equivalence suite: vectorized aggregation vs the scalar reference oracle.

The server ships two aggregation backends — the default batched hot path
(``vectorized=True``: one ``(B, D)`` stack, array-valued Λ/similarity, a
single ``weights @ stacked`` fold) and the per-update scalar loop kept as
the reference oracle.  Both implement the same per-batch weighting
semantics: every gradient in a window is weighted against the same clock,
dampening-strategy snapshot and LD_global snapshot, with staleness
observations and LD_global contributions folded in only after all weights
are computed.  This suite drives identical update streams through paired
servers and asserts the two backends agree — parameters, weights,
staleness, clock, rejection counts — across every algorithm preset,
similarity on/off, robust rules, and ``drop_zero_weight`` edge cases; plus
the regression tests for the mid-batch adaptive-dampening drift bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adasgd import (
    AppliedLog,
    AppliedUpdate,
    GradientUpdate,
    StalenessAwareServer,
    make_adasgd,
    make_dynsgd,
    make_fedavg,
    make_ssgd,
)
from repro.core.dampening import DropStale
from repro.core.robust import coordinate_median, krum, trimmed_mean
from repro.core.similarity import GlobalLabelTracker

DIM = 16
NUM_LABELS = 5


def _update(rng, pull_step, labels=True, worker=None, gradient=None):
    return GradientUpdate(
        gradient=(
            rng.normal(size=DIM) if gradient is None else np.asarray(gradient, float)
        ),
        pull_step=pull_step,
        label_counts=rng.integers(0, 8, size=NUM_LABELS).astype(float)
        if labels
        else None,
        worker_id=worker,
    )


def _assert_equivalent(vec: StalenessAwareServer, ref: StalenessAwareServer):
    """Full observable-state agreement between the two backends."""
    assert vec.clock == ref.clock
    assert vec.rejected_count == ref.rejected_count
    assert vec.buffered_count == ref.buffered_count
    np.testing.assert_allclose(
        vec.current_parameters(), ref.current_parameters(), rtol=1e-10, atol=1e-12
    )
    np.testing.assert_allclose(
        vec.applied_weights(), ref.applied_weights(), rtol=1e-12, atol=1e-15
    )
    np.testing.assert_array_equal(vec.applied_staleness(), ref.applied_staleness())
    np.testing.assert_allclose(
        vec.applied.similarity(), ref.applied.similarity(), rtol=1e-12, atol=1e-15
    )
    np.testing.assert_allclose(
        vec.applied.dampening(), ref.applied.dampening(), rtol=1e-12, atol=1e-15
    )
    np.testing.assert_array_equal(vec.applied.steps(), ref.applied.steps())
    if vec.similarity_tracker is not None and ref.similarity_tracker is not None:
        np.testing.assert_allclose(
            vec.similarity_tracker.counts, ref.similarity_tracker.counts, rtol=1e-12
        )


def _drive(server: StalenessAwareServer, seed: int = 7, rounds: int = 6):
    """A mixed workload: singles, micro-batches, stale and fresh updates."""
    rng = np.random.default_rng(seed)
    for _ in range(3):
        server.submit(_update(rng, pull_step=server.clock))
    for round_index in range(rounds):
        clock = server.clock
        batch = [
            _update(
                rng,
                pull_step=max(0, clock - int(rng.integers(0, clock + 1))),
                labels=bool(rng.integers(0, 2)),
                worker=int(rng.integers(0, 50)),
            )
            for _ in range(int(rng.integers(1, 9)))
        ]
        server.submit_many(batch)
        if round_index % 2 == 0:
            server.submit(_update(rng, pull_step=max(0, server.clock - 1)))


def _pair(factory):
    return factory(vectorized=True), factory(vectorized=False)


class TestPresetEquivalence:
    """All four algorithm presets agree between backends."""

    def test_adasgd(self):
        def build(vectorized):
            server = make_adasgd(
                np.zeros(DIM),
                num_labels=NUM_LABELS,
                learning_rate=0.1,
                initial_tau_thres=6.0,
                similarity_bootstrap_samples=8.0,
            )
            server.vectorized = vectorized
            return server

        vec, ref = _pair(build)
        _drive(vec)
        _drive(ref)
        _assert_equivalent(vec, ref)

    def test_adasgd_similarity_off(self):
        def build(vectorized):
            server = make_adasgd(
                np.zeros(DIM),
                num_labels=NUM_LABELS,
                learning_rate=0.1,
                boost_similarity=False,
                initial_tau_thres=6.0,
            )
            server.vectorized = vectorized
            return server

        vec, ref = _pair(build)
        _drive(vec, seed=11)
        _drive(ref, seed=11)
        _assert_equivalent(vec, ref)

    def test_adasgd_adaptive_bootstrap_crossing(self):
        """Equivalence holds while the adaptive Λ crosses its bootstrap."""

        def build(vectorized):
            server = make_adasgd(
                np.zeros(DIM), num_labels=NUM_LABELS, learning_rate=0.05
            )
            server.vectorized = vectorized
            return server

        vec, ref = _pair(build)
        _drive(vec, seed=3, rounds=14)  # > 30 observations: crosses min_samples
        _drive(ref, seed=3, rounds=14)
        _assert_equivalent(vec, ref)

    @pytest.mark.parametrize(
        "preset", [make_dynsgd, make_fedavg, make_ssgd], ids=["dynsgd", "fedavg", "ssgd"]
    )
    def test_fixed_dampening_presets(self, preset):
        def build(vectorized):
            server = preset(np.zeros(DIM), learning_rate=0.1)
            server.vectorized = vectorized
            return server

        vec, ref = _pair(build)
        _drive(vec, seed=23)
        _drive(ref, seed=23)
        _assert_equivalent(vec, ref)

    @pytest.mark.parametrize("k", [2, 4])
    def test_aggregation_windows(self, k):
        def build(vectorized):
            server = make_dynsgd(np.zeros(DIM), learning_rate=0.1, aggregation_k=k)
            server.vectorized = vectorized
            return server

        vec, ref = _pair(build)
        _drive(vec, seed=31)
        _drive(ref, seed=31)
        _assert_equivalent(vec, ref)


class TestRobustRules:
    @pytest.mark.parametrize(
        "rule",
        [coordinate_median, lambda g: trimmed_mean(g, trim=1), krum],
        ids=["median", "trimmed-mean", "krum"],
    )
    def test_robust_rule_equivalence(self, rule):
        def build(vectorized):
            return StalenessAwareServer(
                np.zeros(DIM),
                dampening="adaptive",
                learning_rate=0.1,
                robust_rule=rule,
                initial_tau_thres=8.0,
                vectorized=vectorized,
            )

        rng_vec, rng_ref = np.random.default_rng(5), np.random.default_rng(5)
        vec, ref = _pair(build)
        for _ in range(5):
            batch_vec = [_update(rng_vec, pull_step=0, worker=i) for i in range(5)]
            batch_ref = [_update(rng_ref, pull_step=0, worker=i) for i in range(5)]
            vec.submit_many(batch_vec)
            ref.submit_many(batch_ref)
        _assert_equivalent(vec, ref)

    def test_robust_single_survivor_skips_rule(self):
        """A batch reduced to one row bypasses the rule in both backends."""

        def build(vectorized):
            return StalenessAwareServer(
                np.zeros(DIM),
                dampening=DropStale(max_staleness=2),
                learning_rate=1.0,
                robust_rule=coordinate_median,
                vectorized=vectorized,
            )

        vec, ref = _pair(build)
        for server in (vec, ref):
            for step in range(4):  # advance the clock to 4
                server.submit(
                    _update(np.random.default_rng(step), pull_step=server.clock)
                )
        rng_vec, rng_ref = np.random.default_rng(9), np.random.default_rng(9)
        # One fresh row survives; the stale row gets weight 0 and is dropped.
        vec.submit_many(
            [_update(rng_vec, pull_step=4), _update(rng_vec, pull_step=0)]
        )
        ref.submit_many(
            [_update(rng_ref, pull_step=4), _update(rng_ref, pull_step=0)]
        )
        _assert_equivalent(vec, ref)


class TestDropZeroWeight:
    def _build(self, vectorized, drop):
        return StalenessAwareServer(
            np.ones(DIM),
            dampening=DropStale(max_staleness=1),
            learning_rate=0.5,
            drop_zero_weight=drop,
            vectorized=vectorized,
        )

    def _advance(self, server, steps=3):
        for step in range(steps):
            server.submit(
                _update(np.random.default_rng(step), pull_step=server.clock)
            )

    @pytest.mark.parametrize("drop", [True, False], ids=["drop", "keep"])
    def test_mixed_zero_weight_batch(self, drop):
        vec, ref = self._build(True, drop), self._build(False, drop)
        self._advance(vec)
        self._advance(ref)
        rng_vec, rng_ref = np.random.default_rng(2), np.random.default_rng(2)
        for server, rng in ((vec, rng_vec), (ref, rng_ref)):
            server.submit_many(
                [
                    _update(rng, pull_step=3, worker=0),  # fresh: weight 1
                    _update(rng, pull_step=0, worker=1),  # stale: weight 0
                    _update(rng, pull_step=2, worker=2),  # τ=1: weight 1
                ]
            )
        _assert_equivalent(vec, ref)
        if drop:
            assert len(vec.applied) == 3 + 2  # zero-weight row dropped
            assert vec.rejected_count == 1
        else:
            assert len(vec.applied) == 3 + 3  # zero-weight row recorded
            assert vec.rejected_count == 0

    def test_all_zero_weight_batch_applies_nothing(self):
        vec, ref = self._build(True, True), self._build(False, True)
        self._advance(vec)
        self._advance(ref)
        rng_vec, rng_ref = np.random.default_rng(4), np.random.default_rng(4)
        before_vec = vec.current_parameters()
        vec.submit_many([_update(rng_vec, pull_step=0), _update(rng_vec, pull_step=0)])
        ref.submit_many([_update(rng_ref, pull_step=0), _update(rng_ref, pull_step=0)])
        np.testing.assert_array_equal(vec.current_parameters(), before_vec)
        _assert_equivalent(vec, ref)
        assert vec.clock == 3  # no model update happened
        assert vec.rejected_count == 2


class TestSubmitManyMechanics:
    def test_nan_inf_rows_rejected_identically(self):
        vec, ref = (
            make_fedavg(np.zeros(DIM), learning_rate=0.1),
            make_fedavg(np.zeros(DIM), learning_rate=0.1),
        )
        ref.vectorized = False
        rng = np.random.default_rng(6)
        good = rng.normal(size=DIM)
        batch = [
            GradientUpdate(gradient=good.copy(), pull_step=0),
            GradientUpdate(gradient=np.full(DIM, np.nan), pull_step=0),
            GradientUpdate(gradient=np.full(DIM, np.inf), pull_step=0),
            GradientUpdate(gradient=good.copy(), pull_step=0),
        ]
        assert vec.submit_many(list(batch))
        assert ref.submit_many(list(batch))
        _assert_equivalent(vec, ref)
        assert vec.rejected_count == 2

    def test_all_rejected_batch_returns_false(self):
        server = make_fedavg(np.zeros(DIM))
        assert not server.submit_many(
            [GradientUpdate(gradient=np.full(DIM, np.nan), pull_step=0)]
        )
        assert server.clock == 0
        assert server.rejected_count == 1

    def test_prestacked_matrix_matches_list_path(self):
        rng = np.random.default_rng(8)
        batch = [_update(rng, pull_step=0, worker=i) for i in range(6)]
        stacked = np.stack([u.gradient for u in batch])
        with_stack = make_dynsgd(np.zeros(DIM), learning_rate=0.1)
        without = make_dynsgd(np.zeros(DIM), learning_rate=0.1)
        with_stack.submit_many(batch, stacked=stacked)
        without.submit_many(batch)
        np.testing.assert_array_equal(
            with_stack.current_parameters(), without.current_parameters()
        )

    def test_prestacked_shape_mismatch_rejected(self):
        rng = np.random.default_rng(8)
        batch = [_update(rng, pull_step=0) for _ in range(3)]
        server = make_dynsgd(np.zeros(DIM))
        with pytest.raises(ValueError):
            server.submit_many(batch, stacked=np.zeros((2, DIM)))

    def test_partial_buffer_joins_batch(self):
        """Updates buffered by submit() fold into the next submit_many."""

        def build(vectorized):
            server = make_dynsgd(np.zeros(DIM), learning_rate=0.1, aggregation_k=4)
            server.vectorized = vectorized
            return server

        vec, ref = _pair(build)
        rng_vec, rng_ref = np.random.default_rng(12), np.random.default_rng(12)
        for server, rng in ((vec, rng_vec), (ref, rng_ref)):
            server.submit(_update(rng, pull_step=0, worker=99))  # buffered, K=4
            assert server.buffered_count == 1
            assert server.submit_many(
                [_update(rng, pull_step=0, worker=i) for i in range(3)]
            )
            assert server.buffered_count == 0
        _assert_equivalent(vec, ref)
        assert vec.clock == 1  # one window: the buffered update joined

    def test_empty_batch_is_noop(self):
        server = make_dynsgd(np.zeros(DIM))
        assert not server.submit_many([])
        assert server.clock == 0

    @pytest.mark.parametrize("size", [1, 3], ids=["single", "multi"])
    def test_caller_batch_list_not_mutated(self, size):
        """submit_many must never empty or alter the caller's list.

        Regression: the vectorized branch adopts the caller's list as the
        window buffer when every row is finite; the kernel must rebind the
        buffer, not clear the shared object (a caller may log or retry its
        batch after submission).
        """
        rng = np.random.default_rng(21)
        batch = [_update(rng, pull_step=0, worker=i) for i in range(size)]
        server = make_dynsgd(np.zeros(DIM), learning_rate=0.1)
        assert server.submit_many(batch)
        assert len(batch) == size


class TestPermutationInvariance:
    """Regression: mid-batch adaptive-dampening drift (the tentpole bugfix).

    Historically ``staleness_tracker.observe()`` ran inside the per-update
    loop, so an adaptive Λ mutated mid-batch and weights depended on the
    order gradients happened to sit in the micro-batch.  Both backends now
    snapshot the strategy once per window and observe afterwards, so the
    weight assigned to an update is a function of the update and the
    pre-window server state only.
    """

    @staticmethod
    def _adaptive_at_bootstrap_edge(vectorized: bool) -> StalenessAwareServer:
        """Adaptive server one observation short of bootstrapping.

        The next window's observations cross ``min_samples``: under the
        old mid-batch-observe code, updates early in the batch were
        weighted by DynSGD's inverse fallback while later ones saw the
        freshly bootstrapped exponential Λ — the sharpest form of drift.
        """
        server = StalenessAwareServer(
            np.zeros(DIM),
            dampening="adaptive",
            learning_rate=0.1,
            vectorized=vectorized,
        )
        rng = np.random.default_rng(0)
        for _ in range(10):  # 10 windows -> clock 10, 10 observations
            server.submit(_update(rng, pull_step=server.clock, labels=False))
        for _ in range(19):  # 29 total: one short of min_samples=30
            server.staleness_tracker.observe(8.0)
        assert not server.staleness_tracker.bootstrapped
        return server

    @staticmethod
    def _weights_by_worker(server: StalenessAwareServer, step: int) -> dict:
        return {
            record.worker_id: record.weight
            for record in server.applied
            if record.step == step
        }

    @pytest.mark.parametrize("vectorized", [True, False], ids=["vectorized", "scalar"])
    def test_submit_many_weights_permutation_invariant(self, vectorized):
        rng = np.random.default_rng(21)
        gradients = [rng.normal(size=DIM) for _ in range(6)]
        pull_steps = [8, 2, 10, 0, 5, 9]  # staleness 2, 8, 0, 10, 5, 1

        def run(order):
            server = self._adaptive_at_bootstrap_edge(vectorized)
            step = server.clock
            server.submit_many(
                [
                    GradientUpdate(
                        gradient=gradients[i].copy(),
                        pull_step=pull_steps[i],
                        worker_id=i,
                    )
                    for i in order
                ]
            )
            return self._weights_by_worker(server, step), server.current_parameters()

        forward, params_fwd = run(range(6))
        backward, params_bwd = run(reversed(range(6)))
        shuffled, params_shuf = run([3, 0, 5, 1, 4, 2])
        assert forward.keys() == backward.keys() == shuffled.keys()
        for worker in forward:
            assert forward[worker] == pytest.approx(backward[worker], rel=1e-12)
            assert forward[worker] == pytest.approx(shuffled[worker], rel=1e-12)
        # The folded model is order-independent too (commutative sum).
        np.testing.assert_allclose(params_fwd, params_bwd, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(params_fwd, params_shuf, rtol=1e-9, atol=1e-12)

    def test_strategy_snapshot_excludes_in_window_observations(self):
        """The window's own staleness lands only after weighting."""
        server = self._adaptive_at_bootstrap_edge(vectorized=True)
        before = server.staleness_tracker.num_observations
        server.submit_many(
            [
                GradientUpdate(gradient=np.ones(DIM), pull_step=0, worker_id=0),
                GradientUpdate(gradient=np.ones(DIM), pull_step=10, worker_id=1),
            ]
        )
        # Both updates were weighted by the pre-window inverse fallback
        # (tracker not yet bootstrapped), even though the window itself
        # pushed the tracker past min_samples.
        assert server.staleness_tracker.num_observations == before + 2
        assert server.staleness_tracker.bootstrapped
        weights = self._weights_by_worker(server, 10)
        assert weights[0] == pytest.approx(1.0 / (10.0 + 1.0))  # τ=10 inverse
        assert weights[1] == pytest.approx(1.0)  # τ=0

    def test_vectorized_and_scalar_agree_at_bootstrap_edge(self):
        vec = self._adaptive_at_bootstrap_edge(vectorized=True)
        ref = self._adaptive_at_bootstrap_edge(vectorized=False)
        rng = np.random.default_rng(33)
        batch = [
            GradientUpdate(
                gradient=rng.normal(size=DIM), pull_step=p, worker_id=i
            )
            for i, p in enumerate([0, 3, 7, 10])
        ]
        vec.submit_many([GradientUpdate(u.gradient.copy(), u.pull_step, None, u.worker_id) for u in batch])
        ref.submit_many([GradientUpdate(u.gradient.copy(), u.pull_step, None, u.worker_id) for u in batch])
        _assert_equivalent(vec, ref)


class TestAppliedLog:
    """The structure-of-arrays applied log keeps the record surface."""

    def test_append_and_getitem_roundtrip(self):
        log = AppliedLog(capacity=2)
        records = [
            AppliedUpdate(
                step=i,
                staleness=float(i),
                similarity=0.5,
                dampening=0.25,
                weight=0.125,
                worker_id=None if i % 2 else i,
            )
            for i in range(9)  # forces two capacity doublings
        ]
        for record in records:
            log.append(record)
        assert len(log) == 9
        assert list(log) == records
        assert log[-1] == records[-1]
        with pytest.raises(IndexError):
            log[9]
        with pytest.raises(IndexError):
            log[-10]

    def test_append_batch_matches_scalar_appends(self):
        batched, scalar = AppliedLog(), AppliedLog()
        staleness = np.array([0.0, 1.0, 2.0])
        similarity = np.array([1.0, 0.5, 0.25])
        dampening = np.array([1.0, 0.5, 0.33])
        weight = np.array([1.0, 0.25, 0.08])
        worker_ids = np.array([7.0, np.nan, 9.0])
        batched.append_batch(
            step=4,
            staleness=staleness,
            similarity=similarity,
            dampening=dampening,
            weight=weight,
            worker_ids=worker_ids,
        )
        for i in range(3):
            scalar.append(
                AppliedUpdate(
                    step=4,
                    staleness=staleness[i],
                    similarity=similarity[i],
                    dampening=dampening[i],
                    weight=weight[i],
                    worker_id=None if np.isnan(worker_ids[i]) else int(worker_ids[i]),
                )
            )
        assert list(batched) == list(scalar)
        np.testing.assert_array_equal(batched.weights(), scalar.weights())
        np.testing.assert_array_equal(batched.staleness(), scalar.staleness())

    def test_column_accessors_return_copies(self):
        log = AppliedLog()
        log.append(
            AppliedUpdate(
                step=0, staleness=1.0, similarity=1.0, dampening=1.0, weight=1.0
            )
        )
        weights = log.weights()
        weights[...] = -1.0
        assert log.weights()[0] == 1.0


class TestBatchedTrackerHelpers:
    """The array-capable building blocks agree with their scalar kernels."""

    def test_similarity_many_matches_scalar(self):
        tracker = GlobalLabelTracker(NUM_LABELS, bootstrap_samples=1.0)
        rng = np.random.default_rng(14)
        tracker.update(rng.integers(1, 10, size=NUM_LABELS).astype(float))
        counts = rng.integers(0, 6, size=(8, NUM_LABELS)).astype(float)
        counts[3] = 0.0  # zero histogram row
        batched = tracker.similarity_many(counts)
        scalar = np.array([tracker.similarity(row) for row in counts])
        np.testing.assert_allclose(batched, scalar, rtol=1e-12)

    def test_similarity_many_bootstrap_neutral(self):
        tracker = GlobalLabelTracker(NUM_LABELS, bootstrap_samples=1e9)
        scores = tracker.similarity_many(np.ones((4, NUM_LABELS)))
        np.testing.assert_array_equal(scores, np.ones(4))

    def test_update_many_matches_scalar_updates(self):
        rng = np.random.default_rng(15)
        counts = rng.integers(0, 6, size=(5, NUM_LABELS)).astype(float)
        weights = rng.uniform(0.0, 1.0, size=5)
        batched = GlobalLabelTracker(NUM_LABELS)
        scalar = GlobalLabelTracker(NUM_LABELS)
        batched.update_many(counts, weights)
        for row, weight in zip(counts, weights):
            scalar.update(row, weight=float(weight))
        np.testing.assert_allclose(batched.counts, scalar.counts, rtol=1e-12)

    def test_update_many_validation(self):
        tracker = GlobalLabelTracker(NUM_LABELS)
        with pytest.raises(ValueError):
            tracker.update_many(np.ones((2, NUM_LABELS + 1)), np.ones(2))
        with pytest.raises(ValueError):
            tracker.update_many(np.ones((2, NUM_LABELS)), np.ones(3))
        with pytest.raises(ValueError):
            tracker.update_many(np.ones((2, NUM_LABELS)), np.array([0.5, -0.1]))
