"""Tests for Bhattacharyya similarity and the global label tracker (Eq. 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.similarity import GlobalLabelTracker, bhattacharyya, label_distribution

nonneg_vec = arrays(
    np.float64,
    st.integers(2, 12),
    elements=st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
)


class TestBhattacharyya:
    def test_identical_distributions_give_one(self):
        p = np.array([0.25, 0.25, 0.5])
        assert bhattacharyya(p, p) == pytest.approx(1.0)

    def test_disjoint_supports_give_zero(self):
        assert bhattacharyya(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_paper_example(self):
        """§2.3: 1 example of label 0 and 2 of label 1 → LD = [1/3, 2/3, 0, 0]."""
        local = label_distribution(np.array([1.0, 2.0, 0.0, 0.0]))
        assert np.allclose(local, [1 / 3, 2 / 3, 0, 0])

    def test_normalization_invariance(self):
        p = np.array([1.0, 2.0, 3.0])
        q = np.array([2.0, 1.0, 1.0])
        assert bhattacharyya(p, q) == pytest.approx(bhattacharyya(10 * p, 5 * q))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bhattacharyya(np.ones(3), np.ones(4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bhattacharyya(np.array([-1.0, 2.0]), np.ones(2))

    def test_zero_vector_is_maximally_novel(self):
        assert bhattacharyya(np.zeros(3), np.ones(3)) == 0.0

    @given(nonneg_vec)
    @settings(max_examples=80)
    def test_bounds_property(self, p):
        q = np.roll(p, 1)
        value = bhattacharyya(p, q)
        assert 0.0 <= value <= 1.0

    @given(nonneg_vec)
    @settings(max_examples=80)
    def test_symmetry_property(self, p):
        q = np.roll(p, 1) + 0.5
        assert bhattacharyya(p, q) == pytest.approx(bhattacharyya(q, p))


class TestLabelDistribution:
    def test_normalizes(self):
        out = label_distribution(np.array([2.0, 2.0]))
        assert np.allclose(out, 0.5)

    def test_zero_counts(self):
        assert np.allclose(label_distribution(np.zeros(4)), 0.0)


class TestGlobalLabelTracker:
    def test_empty_tracker_returns_zero_similarity(self):
        tracker = GlobalLabelTracker(4)
        assert tracker.similarity(np.array([1.0, 0, 0, 0])) == 0.0

    def test_similarity_after_update(self):
        tracker = GlobalLabelTracker(2)
        tracker.update(np.array([10.0, 0.0]))
        assert tracker.similarity(np.array([5.0, 0.0])) == pytest.approx(1.0)
        assert tracker.similarity(np.array([0.0, 5.0])) == 0.0

    def test_unseen_label_lowers_similarity(self):
        """The 'very rare animal' example of §2.3."""
        tracker = GlobalLabelTracker(3)
        tracker.update(np.array([50.0, 50.0, 0.0]))
        seen = tracker.similarity(np.array([1.0, 1.0, 0.0]))
        novel = tracker.similarity(np.array([0.0, 0.0, 2.0]))
        mixed = tracker.similarity(np.array([1.0, 1.0, 2.0]))
        assert seen == pytest.approx(1.0)
        assert novel == 0.0
        assert novel < mixed < seen

    def test_update_accumulates(self):
        tracker = GlobalLabelTracker(2)
        tracker.update(np.array([1.0, 0.0]))
        tracker.update(np.array([0.0, 3.0]))
        assert np.allclose(tracker.counts, [1.0, 3.0])
        assert np.allclose(tracker.global_distribution(), [0.25, 0.75])

    def test_reset(self):
        tracker = GlobalLabelTracker(2)
        tracker.update(np.ones(2))
        tracker.reset()
        assert np.allclose(tracker.counts, 0.0)

    def test_wrong_shape_rejected(self):
        tracker = GlobalLabelTracker(3)
        with pytest.raises(ValueError):
            tracker.similarity(np.ones(2))
        with pytest.raises(ValueError):
            tracker.update(np.ones(4))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            GlobalLabelTracker(0)

    @given(
        arrays(np.float64, 5, elements=st.floats(0.0, 100.0)),
        arrays(np.float64, 5, elements=st.floats(0.0, 100.0)),
    )
    @settings(max_examples=60)
    def test_similarity_bounds_property(self, first, second):
        tracker = GlobalLabelTracker(5)
        tracker.update(first)
        value = tracker.similarity(second)
        assert 0.0 <= value <= 1.0
