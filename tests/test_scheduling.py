"""Tests for straggler-aware routing (spec, routers, gateway wiring)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import FleetBuilder, RoutingSpec, RuntimeSpec
from repro.core import make_fedavg
from repro.devices.device import DeviceFeatures
from repro.gateway import (
    DeadlineAwareRouter,
    Gateway,
    GatewayConfig,
    HashRouter,
)
from repro.profiler import IProf, SLO
from repro.server import FleetServer
from repro.server.protocol import TaskAssignment, TaskRequest, TaskResult

DIM = 16
NUM_LABELS = 4


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _request(worker_id: int) -> TaskRequest:
    return TaskRequest(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        label_counts=np.ones(NUM_LABELS),
    )


def _result(worker_id: int, pull_step: int = 0, compute_s: float = 1.0) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=np.ones(DIM),
        label_counts=np.ones(NUM_LABELS),
        batch_size=8,
        computation_time_s=compute_s,
        energy_percent=0.01,
    )


def _fedavg_shard() -> FleetServer:
    return FleetServer(
        make_fedavg(np.zeros(DIM), learning_rate=0.1),
        IProf(),
        SLO(time_seconds=3.0),
    )


class _StubGateway:
    """Gateway stand-in with scripted per-shard loads."""

    def __init__(self, loads: dict[str, float]):
        self.loads = dict(loads)

    def shard_load(self, shard_id: str, now: float | None = None) -> float:
        return self.loads[shard_id]


def _steering_router(
    loads: dict[str, float], **spec_kwargs
) -> DeadlineAwareRouter:
    spec_kwargs.setdefault("candidates", max(2, len(loads)))
    spec_kwargs.setdefault("steer_penalty_s", 0.0)
    router = DeadlineAwareRouter(RoutingSpec(policy="deadline", **spec_kwargs))
    router.bind(_StubGateway(loads))
    for shard_id in loads:
        router.add_shard(shard_id)
    return router


def _flag(router: DeadlineAwareRouter, worker_id: int, ratio: float = 10.0) -> None:
    router.observe_prediction(worker_id, ratio * 3.0, 3.0, now=0.0)


class TestRoutingSpec:
    def test_defaults_build_deadline_router(self):
        router = RoutingSpec().build()
        assert isinstance(router, DeadlineAwareRouter)

    def test_hash_policy_builds_hash_router(self):
        router = RoutingSpec(policy="hash").build(replicas=32)
        assert isinstance(router, HashRouter)
        assert router.ring.replicas == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "zodiac"},
            {"straggler_factor": 0.0},
            {"hysteresis": 0.5},
            {"min_dwell_s": -1.0},
            {"max_rebalance_fraction": 1.5},
            {"candidates": 1},
            {"ema_alpha": 0.0},
            {"steer_penalty_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RoutingSpec(**kwargs)

    def test_runtime_spec_carries_routing(self):
        spec = RuntimeSpec(mode="sync", routing=RoutingSpec())
        assert spec.routing.policy == "deadline"
        with pytest.raises(TypeError):
            RuntimeSpec(routing=42)

    def test_builder_routing_rides_on_server_spec(self):
        spec = (
            FleetBuilder(np.zeros(DIM))
            .algorithm("fedavg")
            .routing(policy="deadline", straggler_factor=2.0)
            .spec()
        )
        assert spec.runtime.mode == "sync"  # placement does not imply async
        assert spec.runtime.routing.straggler_factor == 2.0
        gateway = Gateway.from_spec(2, spec)
        assert isinstance(gateway.router, DeadlineAwareRouter)
        assert gateway.runtime is None

    def test_builder_routing_merges_into_existing_runtime(self):
        spec = (
            FleetBuilder(np.zeros(DIM))
            .algorithm("fedavg")
            .runtime(mode="async", executor="virtual")
            .routing(policy="deadline")
            .spec()
        )
        assert spec.runtime.mode == "async"
        assert spec.runtime.routing is not None
        with pytest.raises(ValueError):
            FleetBuilder(np.zeros(DIM)).routing(RoutingSpec(), policy="hash")


class TestHashRouter:
    def test_route_matches_ring(self):
        router = HashRouter(replicas=64)
        for shard in ("a", "b", "c"):
            router.add_shard(shard)
        assert all(
            router.route(worker, now=float(worker))
            == router.ring.node_for(worker)
            for worker in range(200)
        )

    def test_gateway_defaults_to_hash_router(self):
        gateway = Gateway([_fedavg_shard(), _fedavg_shard()])
        assert isinstance(gateway.router, HashRouter)
        assert all(
            gateway.shard_for(w) == gateway.ring.node_for(w) for w in range(50)
        )

    def test_observations_are_noops(self):
        router = HashRouter()
        router.add_shard("a")
        before = router.route(7)
        router.observe_prediction(7, 100.0, 1.0, now=0.0)
        router.observe_latency(7, 100.0, now=0.0)
        assert router.route(7) == before


class TestDeadlineAwareRouter:
    def test_unknown_device_routes_home(self):
        router = _steering_router({"a": 9.0, "b": 0.0, "c": 5.0})
        for worker in range(20):
            assert router.route(worker, now=0.0) == router.ring.node_for(worker)
        assert router.steered_count == 0

    def test_fast_prediction_stays_home(self):
        router = _steering_router({"a": 9.0, "b": 0.0, "c": 5.0})
        router.observe_prediction(3, 2.9, 3.0, now=0.0)  # meets the deadline
        assert router.route(3, now=1.0) == router.ring.node_for(3)
        assert not router.is_straggler(3)

    def test_straggler_steers_to_least_loaded(self):
        router = _steering_router({"a": 9.0, "b": 0.0, "c": 5.0})
        _flag(router, 3)
        assert router.is_straggler(3)
        assert router.route(3, now=1.0) == "b"
        assert router.steered == {3: "b"}

    def test_sticky_within_dwell(self):
        router = _steering_router({"a": 9.0, "b": 0.0, "c": 5.0}, min_dwell_s=60.0)
        _flag(router, 3)
        assert router.route(3, now=0.0) == "b"
        router._gateway.loads["b"] = 100.0  # b becomes the worst shard
        assert router.route(3, now=59.0) == "b"  # sticky until the dwell

    def test_hysteresis_blocks_marginal_moves(self):
        router = _steering_router(
            {"a": 9.0, "b": 0.0, "c": 5.0}, min_dwell_s=10.0, hysteresis=1.5
        )
        _flag(router, 3)
        assert router.route(3, now=0.0) == "b"
        router._gateway.loads["b"] = 6.0  # worse than c=5, but within 1.5x
        assert router.route(3, now=20.0) == "b"
        assert router.reassignments == 0

    def test_no_flapping_on_a_quiet_tier(self):
        """A steered device's own penalty must not read as load the
        device could escape by moving: on an idle tier the placement
        holds across dwell expiries instead of ping-ponging."""
        router = _steering_router(
            {"a": 0.0, "b": 0.0, "c": 0.0},
            min_dwell_s=10.0,
            steer_penalty_s=0.1,
        )
        _flag(router, 3)
        first = router.route(3, now=0.0)
        placements = [router.route(3, now=20.0 * k) for k in range(1, 6)]
        assert placements == [first] * 5
        assert router.reassignments == 0

    def test_hysteresis_allows_clear_wins(self):
        router = _steering_router(
            {"a": 9.0, "b": 0.0, "c": 5.0}, min_dwell_s=10.0, hysteresis=1.5
        )
        _flag(router, 3)
        assert router.route(3, now=0.0) == "b"
        router._gateway.loads["b"] = 50.0
        assert router.route(3, now=20.0) == "c"
        assert router.reassignments == 1

    def test_recovered_device_released_after_dwell(self):
        router = _steering_router({"a": 9.0, "b": 0.0, "c": 5.0}, min_dwell_s=10.0)
        _flag(router, 3)
        steered_to = router.route(3, now=0.0)
        router.observe_prediction(3, 1.0, 3.0, now=1.0)  # now predicts fast
        assert router.route(3, now=5.0) == steered_to  # held through dwell
        assert router.route(3, now=20.0) == router.ring.node_for(3)
        assert router.steered_count == 0

    def test_observed_latency_needs_a_deadline(self):
        router = _steering_router({"a": 0.0, "b": 1.0})
        router.observe_latency(3, 500.0, now=0.0)  # no deadline known yet
        assert not router.is_straggler(3)

    def test_observed_latency_ema_flags_stragglers(self):
        router = _steering_router({"a": 0.0, "b": 1.0}, ema_alpha=0.5)
        router.observe_prediction(3, 1.0, 3.0, now=0.0)  # predicts fast
        assert not router.is_straggler(3)
        router.observe_latency(3, 30.0, now=1.0)  # measures 10x the deadline
        router.observe_latency(3, 30.0, now=2.0)
        assert router.latency_ratio(3) == pytest.approx(10.0)
        assert router.is_straggler(3)

    def test_candidates_distinct_and_live(self):
        router = _steering_router(
            {f"s{i}": float(i) for i in range(6)}, candidates=2
        )
        for worker in range(50):
            picks = router._candidates(worker)
            assert len(picks) == 2
            assert len(set(picks)) == 2
            assert set(picks) <= set(router.ring.nodes)

    def test_single_shard_degenerates(self):
        router = _steering_router({"only": 3.0})
        _flag(router, 1)
        assert router.route(1, now=0.0) == "only"

    def test_same_seed_same_placement(self):
        def drive(seed: int) -> dict[int, str]:
            router = _steering_router(
                {"a": 4.0, "b": 1.0, "c": 2.0}, candidates=2, seed=seed
            )
            for worker in range(24):
                _flag(router, worker)
                router.route(worker, now=float(worker))
            return router.steered

        assert drive(7) == drive(7)
        # Different seeds deal different candidate hands (placements may
        # coincide per worker, but not across the whole population).
        assert drive(7) != drive(8)

    def test_remove_shard_reassigns_displaced_only(self):
        router = _steering_router({"a": 0.0, "b": 5.0, "c": 9.0}, candidates=2)
        for worker in range(12):
            _flag(router, worker)
            router.route(worker, now=0.0)
        before = router.steered
        displaced = {w for w, s in before.items() if s == "a"}
        assert displaced  # a is the least loaded: someone steered there
        router.remove_shard("a", now=1.0)
        after = router.steered
        assert set(after) == set(before)
        for worker, shard in after.items():
            assert shard in ("b", "c")
            if worker not in displaced:
                assert shard == before[worker]

    def test_remove_shard_is_deterministic(self):
        def drive() -> dict[int, str]:
            router = _steering_router(
                {"a": 0.0, "b": 5.0, "c": 9.0}, candidates=2, seed=3
            )
            for worker in range(12):
                _flag(router, worker)
                router.route(worker, now=0.0)
            router.remove_shard("a", now=1.0)
            return router.steered

        assert drive() == drive()

    def test_add_shard_rebalance_is_bounded(self):
        router = _steering_router(
            {"a": 50.0, "b": 60.0},
            candidates=2,
            min_dwell_s=0.0,
            max_rebalance_fraction=0.25,
        )
        for worker in range(16):
            _flag(router, worker)
            router.route(worker, now=0.0)
        assert router.steered_count == 16
        router._gateway.loads["fresh"] = 0.0
        router.add_shard("fresh", now=1.0)
        moved = sum(1 for s in router.steered.values() if s == "fresh")
        # Bounded: at most 25% of the steered population chases the join.
        assert moved <= max(1, int(0.25 * 16))
        assert router.reassignments == moved

    def test_add_shard_with_zero_fraction_pins_placements(self):
        router = _steering_router(
            {"a": 50.0, "b": 60.0},
            candidates=2,
            min_dwell_s=0.0,
            max_rebalance_fraction=0.0,
        )
        for worker in range(8):
            _flag(router, worker)
            router.route(worker, now=0.0)
        before = router.steered
        router._gateway.loads["fresh"] = 0.0
        router.add_shard("fresh", now=1.0)
        assert router.steered == before
        assert router.reassignments == 0


class TestGatewayIntegration:
    def _deadline_gateway(self, num_shards=3, **spec_kwargs):
        spec_kwargs.setdefault("straggler_factor", 1.5)
        return Gateway.from_factory(
            num_shards,
            lambda i: _fedavg_shard(),
            GatewayConfig(batch_size=1),
            router=RoutingSpec(policy="deadline", **spec_kwargs).build(),
        )

    def test_fleet_server_annotates_predictions(self):
        server = _fedavg_shard()
        response = server.handle_request(_request(1))
        assert isinstance(response, TaskAssignment)
        assert response.annotations["profiler.predicted_time_s"] > 0
        assert response.annotations["profiler.deadline_s"] == 3.0

    def test_gateway_feeds_predictions_to_router(self):
        gateway = self._deadline_gateway()
        response = gateway.handle_request(_request(1), now=0.0)
        assert isinstance(response, TaskAssignment)
        assert gateway.router.latency_ratio(1) > 0

    def test_gateway_observes_round_trip(self):
        gateway = self._deadline_gateway()
        gateway.handle_request(_request(1), now=0.0)
        gateway.handle_result(_result(1), now=30.0)
        # 30s round trip over the 3s deadline: EMA starts at the ratio.
        assert gateway.router._observed[1] == pytest.approx(10.0)
        assert gateway.router.is_straggler(1)

    def test_steered_results_land_on_steered_shard(self):
        gateway = self._deadline_gateway()
        gateway.handle_request(_request(1), now=0.0)
        gateway.handle_result(_result(1), now=30.0)  # flags worker 1
        response = gateway.handle_request(_request(1), now=31.0)  # steers
        steered_to = gateway.shard_for(1)
        before = gateway.shards[steered_to].results_applied
        gateway.handle_result(
            _result(1, pull_step=response.pull_step), now=32.0
        )
        assert gateway.shards[steered_to].results_applied == before + 1

    def test_shard_for_is_a_pure_query(self):
        gateway = self._deadline_gateway()
        gateway.handle_request(_request(1), now=0.0)
        gateway.handle_result(_result(1), now=30.0)  # flags worker 1
        # Introspection must not make steering decisions.
        for _ in range(5):
            gateway.shard_for(1)
        assert gateway.router.steered_count == 0
        gateway.handle_request(_request(1), now=31.0)  # the request path does
        assert gateway.router.steered_count == 1

    def test_hash_equivalent_when_all_devices_fast(self):
        def drive(policy: str) -> Gateway:
            gateway = Gateway.from_factory(
                3,
                lambda i: _fedavg_shard(),
                GatewayConfig(batch_size=4, batch_deadline_s=5.0,
                              sync_every_s=40.0),
                router=RoutingSpec(
                    policy=policy, straggler_factor=1e9
                ).build(),
            )
            rng = np.random.default_rng(5)
            for i in range(120):
                worker = i % 24
                now = i * 0.5
                response = gateway.handle_request(_request(worker), now=now)
                assert isinstance(response, TaskAssignment)
                result = TaskResult(
                    worker_id=worker,
                    device_model="Galaxy S7",
                    features=_features(),
                    pull_step=response.pull_step,
                    gradient=rng.normal(size=DIM),
                    label_counts=np.ones(NUM_LABELS),
                    batch_size=8,
                    computation_time_s=1.0,
                    energy_percent=0.01,
                )
                gateway.handle_result(result, now=now + 0.2)
            gateway.finalize(now=100.0)
            return gateway

        hashed, deadline = drive("hash"), drive("deadline")
        assert isinstance(deadline.router, DeadlineAwareRouter)
        assert deadline.router.steered_count == 0
        assert hashed.clock == deadline.clock
        assert np.array_equal(
            hashed.current_parameters(), deadline.current_parameters()
        )
        for shard_id in hashed.shards:
            assert np.array_equal(
                hashed.shards[shard_id].applied_staleness(),
                deadline.shards[shard_id].applied_staleness(),
            )

    def test_scale_down_resteers_stragglers(self):
        spec = (
            FleetBuilder(np.zeros(DIM))
            .algorithm("fedavg", learning_rate=0.1)
            .routing(policy="deadline", straggler_factor=1.5, min_dwell_s=0.0)
            .spec()
        )
        gateway = Gateway.from_spec(3, spec, GatewayConfig(batch_size=1))
        for worker in range(6):
            start = worker * 100.0
            gateway.handle_request(_request(worker), now=start)
            gateway.handle_result(_result(worker), now=start + 30.0)
            # 30s round trip flagged the worker; its next request steers.
            gateway.handle_request(_request(worker), now=start + 31.0)
        assert gateway.router.steered_count == 6
        removed = gateway.scale_down(now=601.0)
        placements = gateway.router.steered
        assert set(placements) == set(range(6))
        assert removed not in placements.values()
        for worker in range(6):
            assert gateway.shard_for(worker) in gateway.shards

    def test_sync_mode_routing_without_async_runtime(self):
        gateway = Gateway.from_factory(
            2,
            lambda i: _fedavg_shard(),
            GatewayConfig(batch_size=1),
            runtime=RuntimeSpec(mode="sync", routing=RoutingSpec()),
        )
        assert gateway.runtime is None
        assert isinstance(gateway.router, DeadlineAwareRouter)
        gateway.handle_result(_result(0), now=0.0)
        assert gateway.results_applied == 1

    def test_fleet_sim_feeds_iprof_predictions_to_router(self, tiny_dataset):
        """End to end: the simulation's protocol traffic carries real
        I-Prof predictions (assignment annotations) into the router."""
        from repro.data.federated_split import iid_split
        from repro.nn.models import build_logistic
        from repro.simulation.fleet_sim import FleetSimConfig, FleetSimulation

        rng = np.random.default_rng(0)
        model = build_logistic(
            rng,
            in_features=int(np.prod(tiny_dataset.train_x.shape[1:])),
            num_classes=tiny_dataset.num_classes,
        )
        spec = (
            FleetBuilder(model.get_parameters(), num_labels=tiny_dataset.num_classes)
            .algorithm("adasgd", learning_rate=0.05, initial_tau_thres=12.0)
            .slo(3.0)
            .routing(policy="deadline", straggler_factor=1.5)
            .spec()
        )
        gateway = Gateway.from_spec(2, spec, GatewayConfig(batch_size=2))
        simulation = FleetSimulation(
            server=gateway,
            model=model,
            dataset=tiny_dataset,
            partition=iid_split(tiny_dataset.train_y, 6, rng),
            rng=rng,
            config=FleetSimConfig(horizon_s=600.0, mean_think_time_s=30.0),
        )
        result = simulation.run()
        assert result.completed > 0
        router = gateway.router
        predicted = [
            w for w in range(6) if router.latency_ratio(w) > 0.0
        ]
        # Every user that completed a round has a prediction on file, and
        # the measured-round-trip EMA is populated alongside it.
        assert predicted
        assert any(w in router._observed for w in predicted)

    def test_shard_load_prefers_quiet_lanes(self):
        from repro.gateway import AggregationCostModel

        gateway = Gateway.from_factory(
            2,
            lambda i: _fedavg_shard(),
            GatewayConfig(batch_size=1, hash_replicas=16),
            cost_model=AggregationCostModel(per_flush_s=1.0, per_result_s=0.1),
        )
        # Drive traffic to one shard only; its recent-service EWMA grows.
        busy = gateway.shard_for(0)
        for i in range(10):
            gateway.handle_result(_result(0), now=float(i))
        quiet = next(s for s in gateway.shards if s != busy)
        assert gateway.shard_load(busy, now=10.0) > gateway.shard_load(
            quiet, now=10.0
        )
        with pytest.raises(KeyError):
            gateway.shard_load("nope")

    def test_shard_load_counts_a_batch_once(self):
        from repro.gateway import AggregationCostModel

        gateway = Gateway.from_factory(
            2,
            lambda i: _fedavg_shard(),
            GatewayConfig(batch_size=1, hash_replicas=16),
            cost_model=AggregationCostModel(per_flush_s=5.0, per_result_s=0.0),
        )
        worker = 0
        shard = gateway.shard_for(worker)
        gateway.handle_result(_result(worker), now=0.0)
        # One 5s batch just delivered: it is both "recent service" and
        # pending occupancy — the load score must not read it as 10s.
        assert gateway.shard_load(shard, now=0.0) == pytest.approx(5.0)
