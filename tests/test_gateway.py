"""Tests for the sharded serving gateway (routing, batching, sync, admission)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_fedavg
from repro.core.adasgd import GradientUpdate
from repro.devices.device import DeviceFeatures
from repro.gateway import (
    AggregationCostModel,
    ConsistentHashRing,
    Gateway,
    GatewayConfig,
    MicroBatcher,
    ShardSynchronizer,
    TokenBucket,
)
from repro.profiler import IProf, SLO
from repro.server import FleetServer, VectorCodec
from repro.server.protocol import RejectionReason, TaskRejection, TaskResult

DIM = 16
NUM_LABELS = 4


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _result(worker_id: int, gradient: np.ndarray, pull_step: int = 0) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=gradient,
        label_counts=np.ones(NUM_LABELS),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _fedavg_shard(learning_rate: float = 0.1) -> FleetServer:
    return FleetServer(
        make_fedavg(np.zeros(DIM), learning_rate=learning_rate),
        IProf(),
        SLO(time_seconds=3.0),
    )


def _gateway(num_shards: int, **config_kwargs) -> Gateway:
    return Gateway.from_factory(
        num_shards,
        lambda i: _fedavg_shard(),
        GatewayConfig(**config_kwargs),
    )


class TestConsistentHashRing:
    def test_stable_mapping(self):
        ring = ConsistentHashRing()
        for i in range(3):
            ring.add_node(f"shard-{i}")
        first = {key: ring.node_for(key) for key in range(500)}
        second = {key: ring.node_for(key) for key in range(500)}
        assert first == second

    def test_add_moves_about_one_over_n_keys(self):
        ring = ConsistentHashRing(replicas=128)
        for i in range(4):
            ring.add_node(f"shard-{i}")
        keys = list(range(2000))
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("shard-4")
        after = {key: ring.node_for(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        # Ideal is 1/5 = 0.2; virtual nodes keep the realized fraction close.
        assert 0.05 < len(moved) / len(keys) < 0.40
        # Consistency: every moved key went to the NEW shard; nothing
        # shuffled between the old shards.
        assert all(after[key] == "shard-4" for key in moved)

    def test_remove_moves_only_the_leavers_keys(self):
        ring = ConsistentHashRing(replicas=128)
        for i in range(5):
            ring.add_node(f"shard-{i}")
        keys = list(range(2000))
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("shard-2")
        after = {key: ring.node_for(key) for key in keys}
        for key in keys:
            if before[key] != "shard-2":
                assert after[key] == before[key]
            else:
                assert after[key] != "shard-2"

    def test_reasonable_balance(self):
        ring = ConsistentHashRing(replicas=256)
        for i in range(4):
            ring.add_node(f"shard-{i}")
        counts = ring.distribution(list(range(4000)))
        assert min(counts.values()) > 4000 / 4 / 3

    def test_membership_errors(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError):
            ring.node_for(1)
        ring.add_node("a")
        with pytest.raises(ValueError):
            ring.add_node("a")
        with pytest.raises(KeyError):
            ring.remove_node("b")


class TestRouting:
    def test_same_device_same_shard(self):
        gateway = _gateway(4, batch_size=1)
        assert all(
            gateway.shard_for(worker) == gateway.shard_for(worker)
            for worker in range(100)
        )
        # Results actually land on the routed shard.
        rng = np.random.default_rng(0)
        for worker in range(32):
            shard_id = gateway.shard_for(worker)
            before = gateway.shards[shard_id].results_applied
            gateway.handle_result(_result(worker, rng.normal(size=DIM)), now=float(worker))
            assert gateway.shards[shard_id].results_applied == before + 1

    def test_rerouted_result_clamps_lease(self):
        gateway = _gateway(2, batch_size=1)
        rng = np.random.default_rng(1)
        # Shard clocks are all 0; a result with a lease from a "removed"
        # shard at clock 5 must not crash the new owner with negative
        # staleness.
        gateway.handle_result(_result(7, rng.normal(size=DIM), pull_step=5), now=0.0)
        assert gateway.results_applied == 1


class TestBatchedAggregation:
    def test_batched_equals_sequential_fedavg(self):
        """One batched aggregation step == K sequential steps (fixed grads).

        Constant dampening makes each weight exactly 1 regardless of the
        clock, and SGD steps are linear in the gradient, so the only
        difference left is the codec round trip.
        """
        rng = np.random.default_rng(2)
        gradients = [rng.normal(size=DIM) for _ in range(8)]

        sequential = _fedavg_shard()
        for i, gradient in enumerate(gradients):
            sequential.handle_result(_result(i, gradient))

        gateway = Gateway(
            [_fedavg_shard()],
            GatewayConfig(batch_size=8, batch_deadline_s=100.0, codec_precision="f64"),
        )
        for i, gradient in enumerate(gradients):
            gateway.handle_result(_result(i, gradient), now=float(i))

        shard = gateway.shards["shard-0"]
        assert shard.clock == 1  # ONE aggregation pass for the whole batch
        assert sequential.clock == 8
        np.testing.assert_allclose(
            shard.current_parameters(), sequential.current_parameters(), atol=1e-12
        )

    def test_batched_close_under_f32_codec(self):
        rng = np.random.default_rng(3)
        gradients = [rng.normal(size=DIM) for _ in range(8)]
        sequential = _fedavg_shard()
        for i, gradient in enumerate(gradients):
            sequential.handle_result(_result(i, gradient))
        gateway = Gateway(
            [_fedavg_shard()],
            GatewayConfig(batch_size=8, batch_deadline_s=100.0, codec_precision="f32"),
        )
        for i, gradient in enumerate(gradients):
            gateway.handle_result(_result(i, gradient), now=float(i))
        np.testing.assert_allclose(
            gateway.current_parameters(),
            sequential.current_parameters(),
            atol=1e-5,
        )

    def test_submit_many_filters_nonfinite(self):
        server = make_fedavg(np.zeros(DIM), learning_rate=0.1)
        bad = GradientUpdate(gradient=np.full(DIM, np.nan), pull_step=0)
        good = GradientUpdate(gradient=np.ones(DIM), pull_step=0)
        assert server.submit_many([bad, good])
        assert server.rejected_count == 1
        assert server.clock == 1
        with pytest.raises(ValueError):
            server.submit_many([GradientUpdate(gradient=np.ones(DIM + 1), pull_step=0)])

    def test_submit_many_all_rejected_leaves_partial_buffer_alone(self):
        """An all-rejected batch applies nothing — not even buffered updates."""
        server = make_fedavg(np.zeros(DIM), learning_rate=0.1, aggregation_k=4)
        assert not server.submit(GradientUpdate(gradient=np.ones(DIM), pull_step=0))
        bad = GradientUpdate(gradient=np.full(DIM, np.inf), pull_step=0)
        assert not server.submit_many([bad])
        assert server.clock == 0
        assert server.buffered_count == 1  # the partial window survives

    def test_submit_many_shape_failure_is_atomic(self):
        """A malformed batch must not leave earlier updates buffered."""
        server = make_fedavg(np.zeros(DIM), learning_rate=0.1)
        good = GradientUpdate(gradient=np.ones(DIM), pull_step=0)
        bad_shape = GradientUpdate(gradient=np.ones(DIM + 1), pull_step=0)
        with pytest.raises(ValueError):
            server.submit_many([good, bad_shape])
        # The rejected batch left no trace: a later flush applies nothing.
        assert not server.flush()
        assert server.clock == 0

    def test_deadline_flush(self):
        gateway = _gateway(1, batch_size=100, batch_deadline_s=10.0)
        rng = np.random.default_rng(4)
        assert not gateway.handle_result(_result(0, rng.normal(size=DIM)), now=0.0)
        assert gateway.batcher.total_pending() == 1
        # Time passing without reaching the size trigger flushes by deadline,
        # and the flush is reported as an update to the caller.
        assert gateway.handle_result(_result(1, rng.normal(size=DIM)), now=11.0)
        assert gateway.batcher.total_pending() == 0
        assert gateway.results_applied == 2

    def test_batch_of_nonfinite_gradients_not_counted_applied(self):
        shard = _fedavg_shard()
        good = _result(0, np.ones(DIM))
        bad = _result(1, np.full(DIM, np.nan))
        assert shard.handle_result_batch([bad, good])
        assert shard.results_applied == 1  # the NaN upload was rejected
        assert shard.optimizer.rejected_count == 1

    def test_micro_batcher_compression(self):
        batcher = MicroBatcher(VectorCodec(precision="f16"), max_batch=4)
        rng = np.random.default_rng(5)
        for i in range(3):
            assert batcher.add("s", _result(i, rng.normal(size=2048)), now=0.0) == []
        assert batcher.pending("s") == 3
        batch = batcher.add("s", _result(3, rng.normal(size=2048)), now=0.0)
        assert len(batch) == 4
        assert batcher.compression_ratio() > 3.0  # f16 + deflate vs f64


class TestBackpressure:
    def test_token_bucket_sheds_bursts_and_refills(self):
        bucket = TokenBucket(rate_per_s=1.0, capacity=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)  # burst exhausted
        assert bucket.tokens == 0.0
        assert bucket.try_acquire(1.5)      # refilled

    def test_gateway_sheds_with_overloaded_reason(self):
        gateway = Gateway(
            [_fedavg_shard()],
            GatewayConfig(batch_size=1, admission_rate_per_s=1.0, admission_burst=1.0),
        )
        worker_request = None
        from repro.server.protocol import TaskRequest

        worker_request = TaskRequest(
            worker_id=0,
            device_model="Galaxy S7",
            features=_features(),
            label_counts=np.ones(NUM_LABELS),
        )
        first = gateway.handle_request(worker_request, now=0.0)
        second = gateway.handle_request(worker_request, now=0.0)
        assert not isinstance(first, TaskRejection)
        assert isinstance(second, TaskRejection)
        assert second.reason is RejectionReason.OVERLOADED
        assert gateway.requests_shed() == 1


class TestSynchronization:
    def test_weighted_blend_and_broadcast(self):
        shard_a = _fedavg_shard(learning_rate=1.0)
        shard_b = _fedavg_shard(learning_rate=1.0)
        sync = ShardSynchronizer(interval_s=10.0)
        shards = {"a": shard_a, "b": shard_b}
        # a absorbs 3 gradients of -1s, b absorbs 1 gradient of +1s.
        for i in range(3):
            shard_a.handle_result(_result(i, -np.ones(DIM)))
        shard_b.handle_result(_result(9, np.ones(DIM)))
        # θ_a = +3, θ_b = -1 (θ ← θ − γ g); weights 3:1 → blend at +2.
        record = sync.synchronize(shards, now=0.0)
        np.testing.assert_allclose(shard_a.current_parameters(), np.full(DIM, 2.0))
        np.testing.assert_allclose(shard_b.current_parameters(), np.full(DIM, 2.0))
        assert record.weights == {"a": 3.0, "b": 1.0}
        assert record.max_divergence > 0
        # Clocks are untouched by a sync.
        assert shard_a.clock == 3 and shard_b.clock == 1

    def test_sync_due_schedule(self):
        sync = ShardSynchronizer(interval_s=10.0)
        assert not sync.due(0.0)   # first sighting arms the interval
        assert not sync.due(5.0)
        assert sync.due(10.0)

    def test_gateway_periodic_sync_bounds_divergence(self):
        gateway = _gateway(2, batch_size=1, sync_every_s=5.0)
        rng = np.random.default_rng(6)
        for i in range(40):
            gateway.handle_result(_result(i, rng.normal(size=DIM)), now=i * 1.0)
        assert len(gateway.synchronizer.history) >= 3
        spread = max(
            float(
                np.linalg.norm(
                    shard.current_parameters() - gateway.current_parameters()
                )
            )
            for shard in gateway.shards.values()
        )
        unsynced = _gateway(2, batch_size=1, sync_every_s=1e9)
        for i in range(40):
            unsynced.handle_result(_result(i, rng.normal(size=DIM)), now=i * 1.0)
        unsynced_spread = max(
            float(
                np.linalg.norm(
                    shard.current_parameters() - unsynced.current_parameters()
                )
            )
            for shard in unsynced.shards.values()
        )
        assert spread < unsynced_spread


class TestMembership:
    def test_add_shard_inherits_consensus(self):
        gateway = _gateway(2, batch_size=1)
        rng = np.random.default_rng(7)
        for i in range(10):
            gateway.handle_result(_result(i, rng.normal(size=DIM)), now=float(i))
        consensus = gateway.current_parameters()
        new_id = gateway.add_shard(_fedavg_shard(), now=10.0)
        np.testing.assert_allclose(
            gateway.shards[new_id].current_parameters(), consensus
        )
        assert gateway.num_shards == 3

    def test_add_shard_does_not_drop_unsynced_learning(self):
        """Joining a shard must not erase updates applied since the last sync.

        add_shard re-baselines the synchronizer's counters; without the
        sync-before-join those updates would carry zero weight at the next
        sync and be overwritten by the broadcast consensus.
        """
        gateway = _gateway(2, batch_size=1, sync_every_s=1e9)
        rng = np.random.default_rng(10)
        for i in range(20):
            gateway.handle_result(_result(i, rng.normal(size=DIM)), now=float(i))
        consensus_before = gateway.current_parameters()
        gateway.add_shard(_fedavg_shard(), now=20.0)
        gateway.synchronize(now=21.0)
        np.testing.assert_allclose(
            gateway.current_parameters(), consensus_before, atol=1e-9
        )

    def test_remove_shard_preserves_learning(self):
        gateway = _gateway(3, batch_size=1)
        rng = np.random.default_rng(8)
        for i in range(30):
            gateway.handle_result(_result(i, rng.normal(size=DIM)), now=float(i))
        consensus_before = gateway.current_parameters()
        gateway.remove_shard("shard-1", now=30.0)
        assert gateway.num_shards == 2
        # The leaver's updates were folded in via the pre-removal sync.
        np.testing.assert_allclose(
            gateway.current_parameters(), consensus_before, atol=1e-9
        )
        with pytest.raises(KeyError):
            gateway.remove_shard("shard-1")

    def test_cannot_remove_last_shard(self):
        gateway = _gateway(1, batch_size=1)
        with pytest.raises(ValueError):
            gateway.remove_shard("shard-0")


class TestThroughputAccounting:
    def test_sharding_and_batching_raise_virtual_throughput(self):
        cost = AggregationCostModel(per_flush_s=0.05, per_result_s=0.002)
        rng = np.random.default_rng(9)

        def drive(num_shards: int, batch_size: int) -> float:
            gateway = Gateway.from_factory(
                num_shards,
                lambda i: _fedavg_shard(),
                GatewayConfig(batch_size=batch_size, batch_deadline_s=1e9),
                cost_model=cost,
            )
            # Saturating arrival pattern: 400 results in 0.4 virtual seconds
            # (well beyond one lane's ~120 results/s service capacity), so
            # throughput is set by the serving tier, not by the arrivals.
            for i in range(400):
                gateway.handle_result(
                    _result(i % 64, rng.normal(size=DIM)), now=i * 0.001
                )
            gateway.finalize(now=0.4)
            return gateway.virtual_throughput()

        assert drive(2, 8) > drive(1, 8)
        assert drive(1, 8) > drive(1, 1)


class TestShardRetirement:
    """Devices routed off a retired shard: deterministic landing, no
    stranded micro-batches (remove_shard/scale_down regression tests)."""

    def test_remove_shard_reroutes_devices_deterministically(self):
        def survivors(gateway):
            gateway.remove_shard("shard-1", now=1.0)
            return {worker: gateway.shard_for(worker) for worker in range(200)}

        first = _gateway(3, batch_size=1)
        before = {worker: first.shard_for(worker) for worker in range(200)}
        after = survivors(first)
        displaced = [w for w in range(200) if before[w] == "shard-1"]
        assert displaced
        for worker in range(200):
            assert after[worker] in first.shards
            if worker not in displaced:
                # Unaffected devices keep their shard (lease affinity).
                assert after[worker] == before[worker]
        # A second identically-built gateway lands every displaced device
        # on the same survivor.
        assert survivors(_gateway(3, batch_size=1)) == after

    def test_remove_shard_drains_pending_lane_into_the_model(self):
        gateway = _gateway(3, batch_size=100, batch_deadline_s=1e9,
                           sync_every_s=1e9)
        rng = np.random.default_rng(11)
        victims = [w for w in range(40) if gateway.shard_for(w) == "shard-1"]
        assert victims
        for worker in victims:
            gateway.handle_result(_result(worker, rng.normal(size=DIM)), now=0.0)
        assert gateway.batcher.pending("shard-1") == len(victims)
        applied_before = gateway.results_applied
        retired = gateway.remove_shard("shard-1", now=1.0)
        # The leaver's pending micro-batch was delivered, not dropped —
        # and its applied work stays in the tier-wide counters.
        assert retired.results_applied == len(victims)
        assert gateway.results_applied == applied_before + len(victims)
        assert gateway.batcher.pending("shard-1") == 0

    def test_scale_down_drains_lanes_and_reroutes(self):
        gateway = Gateway.from_factory(
            2,
            lambda i: _fedavg_shard(),
            GatewayConfig(batch_size=100, batch_deadline_s=1e9, sync_every_s=1e9),
        )
        added = gateway.scale_up(now=0.0)
        rng = np.random.default_rng(12)
        movers = [w for w in range(60) if gateway.shard_for(w) == added]
        assert movers
        for worker in movers:
            gateway.handle_result(_result(worker, rng.normal(size=DIM)), now=1.0)
        assert gateway.batcher.pending(added) == len(movers)
        removed = gateway.scale_down(now=2.0)
        assert removed == added  # LIFO retirement
        assert gateway.results_applied == len(movers)  # lane drained
        # Displaced devices land deterministically on live shards, and
        # their next results apply there.
        landings = {worker: gateway.shard_for(worker) for worker in movers}
        assert set(landings.values()) <= set(gateway.shards)
        worker = movers[0]
        target = landings[worker]
        before = gateway.shards[target].results_applied
        gateway.handle_result(_result(worker, rng.normal(size=DIM)), now=3.0)
        gateway.flush_all(now=3.5)
        assert gateway.shards[target].results_applied == before + 1

    def test_scale_down_with_async_runtime_keeps_lanes_consistent(self):
        from repro.gateway import RuntimeSpec

        gateway = Gateway.from_factory(
            3,
            lambda i: _fedavg_shard(),
            GatewayConfig(batch_size=4, batch_deadline_s=1e9, sync_every_s=1e9),
            runtime=RuntimeSpec(mode="async", executor="virtual"),
        )
        rng = np.random.default_rng(13)
        for worker in range(24):
            gateway.handle_result(_result(worker, rng.normal(size=DIM)), now=0.0)
        pending_total = gateway.batcher.total_pending()
        removed = gateway.scale_down(now=1.0)
        # The retired lane is gone everywhere: batcher, runtime, locks.
        assert gateway.batcher.pending(removed) == 0
        assert gateway.runtime.queue_depth(removed, now=2.0) == 0
        assert removed not in gateway._lanes
        # Nothing the leaver held was lost.
        assert gateway.results_applied >= pending_total - (
            gateway.batcher.total_pending()
        )
        gateway.finalize(now=3.0)
        assert gateway.results_applied == 24


class TestLaneLifecycle:
    """Micro-batcher lanes must not outlive their shard (the leak fix)."""

    def test_flush_removes_lane_entry(self):
        batcher = MicroBatcher(VectorCodec(precision="f64"), max_batch=8)
        batcher.add("s", _result(0, np.ones(DIM)), now=0.0)
        assert "s" in batcher._lanes
        assert len(batcher.flush("s")) == 1
        # No empty lane is re-inserted for due() to rescan forever.
        assert "s" not in batcher._lanes
        assert batcher.flush("s") == []

    def test_drop_discards_pending_entries(self):
        batcher = MicroBatcher(VectorCodec(precision="f64"), max_batch=8)
        batcher.add("s", _result(0, np.ones(DIM)), now=0.0)
        batcher.drop("s")
        assert batcher.pending("s") == 0
        assert batcher.flush("s") == []
        batcher.drop("s")  # idempotent on unknown shards

    def test_due_ignores_flushed_and_dropped_lanes(self):
        batcher = MicroBatcher(
            VectorCodec(precision="f64"), max_batch=100, max_delay_s=1.0
        )
        batcher.add("a", _result(0, np.ones(DIM)), now=0.0)
        batcher.add("b", _result(1, np.ones(DIM)), now=0.0)
        batcher.flush("a")
        batcher.drop("b")
        assert batcher.due(now=100.0) == []

    def test_remove_shard_leaves_no_lane_behind(self):
        gateway = _gateway(3, batch_size=100, batch_deadline_s=1e9, sync_every_s=1e9)
        rng = np.random.default_rng(3)
        # Park pending-but-unflushed results on every shard's lane.
        for i in range(12):
            gateway.handle_result(_result(i, rng.normal(size=DIM)), now=0.0)
        assert gateway.batcher.total_pending() > 0
        gateway.remove_shard("shard-1", now=1.0)
        assert "shard-1" not in gateway.batcher._lanes
        assert gateway.batcher.pending("shard-1") == 0
        # Remaining shards' lanes are intact.
        assert set(gateway.batcher._lanes) <= {"shard-0", "shard-2"}

    def test_uniform_lane_decodes_to_contiguous_matrix(self):
        batcher = MicroBatcher(VectorCodec(precision="f64"), max_batch=8)
        rng = np.random.default_rng(4)
        gradients = [rng.normal(size=DIM) for _ in range(3)]
        for i, gradient in enumerate(gradients):
            batcher.add("s", _result(i, gradient), now=0.0)
        batch = batcher.flush("s")
        base = batch[0].gradient
        for decoded, original in zip(batch, gradients):
            np.testing.assert_array_equal(decoded.gradient, original)
            # Every row is a view into one (B, D) allocation.
            assert decoded.gradient.base is not None
            assert np.shares_memory(decoded.gradient, base.base)
