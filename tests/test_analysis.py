"""Tests for the analysis toolkit (repro.analysis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Ecdf,
    accuracy_auc,
    bar_chart,
    cdf_table,
    curve_table,
    gaussian_tail_split,
    interpolated_steps_to_target,
    is_diverged,
    sparkline,
    speedup_percent,
    summarize,
)


class TestEcdf:
    def test_basic_probabilities(self):
        ecdf = Ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ecdf(0.5) == 0.0
        assert ecdf(2.0) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf(100.0) == 1.0

    def test_quantile_inverts_cdf(self):
        values = np.arange(1, 101, dtype=float)
        ecdf = Ecdf(values)
        assert ecdf.quantile(0.5) == pytest.approx(50.5)
        assert ecdf.quantile(0.0) == 1.0
        assert ecdf.quantile(1.0) == 100.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(0)
        ecdf = Ecdf(rng.normal(size=200))
        xs, ys = ecdf.curve(points=50)
        assert (np.diff(xs) > 0).all()
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Ecdf(np.array([]))
        with pytest.raises(ValueError):
            Ecdf(np.array([np.inf]))
        with pytest.raises(ValueError):
            Ecdf(np.array([1.0])).quantile(1.5)
        with pytest.raises(ValueError):
            Ecdf(np.array([1.0])).curve(points=1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_cdf_properties(self, values):
        ecdf = Ecdf(np.array(values))
        lo, hi = ecdf.support()
        assert ecdf(lo - 1.0) == 0.0
        assert ecdf(hi) == 1.0


class TestSummaries:
    def test_summarize_known_sample(self):
        summary = summarize(np.arange(1, 101, dtype=float))
        assert summary.mean == pytest.approx(50.5)
        assert summary.median == pytest.approx(50.5)
        assert summary.maximum == 100.0
        assert summary.n == 100
        assert summary.p90 <= summary.p99 <= summary.maximum

    def test_row_rendering(self):
        row = summarize(np.array([1.0, 2.0, 3.0])).row(unit="mWh")
        assert "mWh" in row and "n=3" in row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_gaussian_tail_split(self):
        rng = np.random.default_rng(1)
        body = rng.normal(25.0, 8.0, size=2000)
        tail = rng.uniform(150.0, 300.0, size=40)
        split_body, split_tail = gaussian_tail_split(np.concatenate([body, tail]))
        assert split_tail.size >= 35  # nearly all planted outliers isolated
        assert split_body.size >= 1990
        assert split_tail.min() > split_body.max()

    def test_tail_split_validation(self):
        with pytest.raises(ValueError):
            gaussian_tail_split(np.array([]))
        with pytest.raises(ValueError):
            gaussian_tail_split(np.array([1.0]), tail_z=0.0)


class TestConvergenceMetrics:
    def test_interpolated_crossing(self):
        steps = np.array([0, 100, 200])
        accuracy = np.array([0.0, 0.5, 1.0])
        assert interpolated_steps_to_target(steps, accuracy, 0.75) == pytest.approx(150.0)

    def test_target_never_reached(self):
        assert interpolated_steps_to_target(
            np.array([0, 100]), np.array([0.1, 0.2]), 0.9
        ) is None

    def test_first_point_above_target(self):
        assert interpolated_steps_to_target(
            np.array([50, 100]), np.array([0.9, 0.95]), 0.8
        ) == 50.0

    def test_flat_segment_crossing(self):
        steps = np.array([0, 10, 20])
        accuracy = np.array([0.5, 0.8, 0.8])
        assert interpolated_steps_to_target(steps, accuracy, 0.8) == pytest.approx(10.0)

    def test_invalid_curves(self):
        with pytest.raises(ValueError):
            interpolated_steps_to_target(np.array([0, 0]), np.array([0.1, 0.2]), 0.5)
        with pytest.raises(ValueError):
            interpolated_steps_to_target(np.array([]), np.array([]), 0.5)
        with pytest.raises(ValueError):
            accuracy_auc(np.array([1, 2]), np.array([0.5]))

    def test_auc_bounds_and_values(self):
        steps = np.array([0, 100])
        assert accuracy_auc(steps, np.array([1.0, 1.0])) == pytest.approx(1.0)
        assert accuracy_auc(steps, np.array([0.0, 0.0])) == pytest.approx(0.0)
        assert accuracy_auc(steps, np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_auc_single_point(self):
        assert accuracy_auc(np.array([10]), np.array([0.7])) == pytest.approx(0.7)

    def test_speedup_matches_paper_phrasing(self):
        # Baseline 1000 steps, candidate 816: 18.4 % faster (paper's D2 gap).
        assert speedup_percent(1000.0, 816.0) == pytest.approx(18.4)
        assert speedup_percent(None, 100.0) is None
        assert speedup_percent(100.0, None) is None
        with pytest.raises(ValueError):
            speedup_percent(0.0, 10.0)

    def test_is_diverged(self):
        chance = 0.1
        stuck = np.array([0.3, 0.12, 0.09, 0.11])
        learning = np.array([0.1, 0.3, 0.6, 0.8])
        assert is_diverged(stuck, chance)
        assert not is_diverged(learning, chance)
        with pytest.raises(ValueError):
            is_diverged(np.array([]), chance)
        with pytest.raises(ValueError):
            is_diverged(stuck, 1.5)


class TestCharts:
    def test_sparkline_extremes(self):
        line = sparkline(np.array([0.0, 1.0]), low=0.0, high=1.0)
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_series(self):
        assert len(set(sparkline(np.array([2.0, 2.0, 2.0])))) == 1

    def test_sparkline_validation(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))
        with pytest.raises(ValueError):
            sparkline(np.array([1.0]), low=2.0, high=1.0)

    def test_bar_chart_alignment_and_scaling(self):
        chart = bar_chart(["adasgd", "dynsgd"], np.array([10.0, 5.0]), width=10)
        lines = chart.split("\n")
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([-1.0]))
        with pytest.raises(ValueError):
            bar_chart([], np.array([]))

    def test_cdf_table_contents(self):
        table = cdf_table(np.arange(100, dtype=float), unit="s")
        assert "n=100" in table and "p90=" in table and "s" in table

    def test_curve_table_downsamples(self):
        steps = np.arange(0, 1000, 10)
        accuracy = np.linspace(0.0, 1.0, steps.size)
        row = curve_table(steps, accuracy, "adasgd", spark_width=20)
        assert "final=1.000" in row and "adasgd" in row

    def test_curve_table_validation(self):
        with pytest.raises(ValueError):
            curve_table(np.array([1, 2]), np.array([0.5]), "x")


# ======================================================================
# Project-invariant linter (repro.analysis.lint)
# ======================================================================

import json as _json
import textwrap
from pathlib import Path

from repro.analysis.lint import (
    Baseline,
    LintConfig,
    analyze_source,
    run_lint,
    split_new_findings,
)
from repro.analysis.lint.runner import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def codes(source, path="pkg/mod.py", select=None):
    """Lint a dedented snippet; return the finding codes in order."""
    config = LintConfig(select=tuple(select)) if select else LintConfig()
    return [
        f.rule for f in analyze_source(textwrap.dedent(source), path, config)
    ]


class TestClockRules:
    # -- positive: wall-clock reads and sleeps are flagged ---------------
    def test_time_time_flagged(self):
        assert codes("import time\ndef f():\n    return time.time()\n") == [
            "RPR001"
        ]

    def test_datetime_now_flagged(self):
        src = """\
            import datetime
            def stamp():
                return datetime.datetime.now()
        """
        assert codes(src) == ["RPR001"]

    def test_aliased_monotonic_flagged(self):
        assert codes("import time as t\ndef f():\n    return t.monotonic()\n") == [
            "RPR001"
        ]

    def test_from_import_sleep_flagged(self):
        assert codes("from time import sleep\ndef f():\n    sleep(0.1)\n") == [
            "RPR002"
        ]

    # -- negative: durations, instance clocks, allowlists ----------------
    def test_perf_counter_allowed(self):
        assert codes("import time\ndef f():\n    return time.perf_counter()\n") == []

    def test_instance_clock_allowed(self):
        src = """\
            class Sim:
                def now(self):
                    return self.clock.now()
        """
        assert codes(src) == []

    def test_wall_clock_pragma_allowlists_module(self):
        src = "# repro: wall-clock\nimport time\ndef f():\n    return time.time()\n"
        assert codes(src) == []

    def test_allowlisted_path_suffix(self):
        source = "import time\ndef f():\n    return time.time()\n"
        assert codes(source, path="src/repro/cli.py") == []


class TestLockRules:
    # -- positive: guarded attributes touched outside their lock ---------
    def test_unlocked_read_flagged(self):
        src = """\
            import threading
            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []  # guarded-by: _lock
                def peek(self):
                    return len(self._events)
        """
        assert codes(src) == ["RPR101"]

    def test_unlocked_write_flagged(self):
        src = """\
            import threading
            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock
                def bump(self):
                    self._count += 1
        """
        # AugAssign touches the attribute as both read and write context.
        assert "RPR101" in codes(src)

    def test_manifest_guard_flagged(self):
        src = """\
            import threading
            GUARDED_BY = {"Ring._events": "_lock"}
            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []
                def peek(self):
                    return list(self._events)
        """
        assert codes(src) == ["RPR101"]

    def test_unknown_lock_name_flagged(self):
        src = """\
            class Ring:
                def __init__(self):
                    self._events = []  # guarded-by: _mutex
        """
        assert codes(src) == ["RPR102"]

    # -- negative: with-blocks, holds-lock helpers, aliases, __init__ ----
    def test_with_block_access_clean(self):
        src = """\
            import threading
            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []  # guarded-by: _lock
                def add(self, event):
                    with self._lock:
                        self._events.append(event)
        """
        assert codes(src) == []

    def test_holds_lock_helper_clean(self):
        src = """\
            import threading
            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []  # guarded-by: _lock
                # holds-lock: _lock
                def _drain(self):
                    self._events.clear()
        """
        assert codes(src) == []

    def test_lock_alias_clean(self):
        src = """\
            import threading
            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._idle = threading.Condition(self._lock)
                    self._lanes = {}  # guarded-by: _lock, _idle
                def wake(self):
                    with self._idle:
                        self._lanes.clear()
        """
        assert codes(src) == []

    def test_init_exempt(self):
        src = """\
            import threading
            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []  # guarded-by: _lock
                    self._events.append(0)
        """
        assert codes(src) == []


class TestRngRules:
    # -- positive: global-stream draws ----------------------------------
    def test_random_random_flagged(self):
        assert codes("import random\ndef f():\n    return random.random()\n") == [
            "RPR201"
        ]

    def test_random_shuffle_flagged(self):
        src = "import random\ndef f(xs):\n    random.shuffle(xs)\n"
        assert codes(src) == ["RPR201"]

    def test_np_random_rand_flagged(self):
        src = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        assert codes(src) == ["RPR202"]

    def test_np_random_seed_flagged(self):
        src = "import numpy as np\ndef f():\n    np.random.seed(0)\n"
        assert codes(src) == ["RPR202"]

    # -- negative: seeded generator machinery ---------------------------
    def test_default_rng_allowed(self):
        src = "import numpy as np\ndef f():\n    return np.random.default_rng(7)\n"
        assert codes(src) == []

    def test_generator_method_allowed(self):
        src = """\
            import numpy as np
            def f(rng):
                return rng.normal(size=4)
        """
        assert codes(src) == []

    def test_random_instance_allowed(self):
        src = "import random\ndef f():\n    return random.Random(7)\n"
        assert codes(src) == []


class TestHotPathRules:
    # -- positive: serialization / blocking / allocation in hot paths ----
    def test_json_in_hot_path_flagged(self):
        src = """\
            import json
            # hot-path
            def fold(record):
                return json.dumps(record)
        """
        assert codes(src) == ["RPR301"]

    def test_fsync_in_hot_path_flagged(self):
        src = """\
            import os
            # hot-path
            def append(fd):
                os.fsync(fd)
        """
        assert codes(src) == ["RPR302"]

    def test_logging_in_hot_path_flagged(self):
        src = """\
            import logging
            logger = logging.getLogger(__name__)
            # hot-path
            def fold(x):
                logger.info("folding %s", x)
        """
        assert codes(src) == ["RPR302"]

    def test_concatenate_in_hot_path_flagged(self):
        src = """\
            import numpy as np
            # hot-path
            def fold(parts):
                return np.concatenate(parts)
        """
        assert codes(src) == ["RPR303"]

    # -- negative: unmarked functions and clean hot paths ---------------
    def test_unmarked_function_free(self):
        src = "import json\ndef export(record):\n    return json.dumps(record)\n"
        assert codes(src) == []

    def test_np_stack_allowed_in_hot_path(self):
        src = """\
            import numpy as np
            # hot-path
            def fold(parts):
                return np.stack(parts)
        """
        assert codes(src) == []

    def test_perf_counter_allowed_in_hot_path(self):
        src = """\
            import time
            # hot-path
            def fold(x):
                started = time.perf_counter()
                return x, time.perf_counter() - started
        """
        assert codes(src) == []


class TestSuppression:
    def test_coded_noqa_suppresses(self):
        src = "import time\ndef f():\n    return time.time()  # repro: noqa[RPR001]\n"
        assert codes(src) == []

    def test_blanket_noqa_suppresses(self):
        src = "import time\ndef f():\n    return time.time()  # repro: noqa\n"
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\ndef f():\n    return time.time()  # repro: noqa[RPR002]\n"
        assert codes(src) == ["RPR001"]

    def test_noqa_is_line_scoped(self):
        src = """\
            import time
            def f():
                a = time.time()  # repro: noqa[RPR001]
                return a + time.time()
        """
        assert codes(src) == ["RPR001"]

    def test_select_restricts_rules(self):
        src = "import time, random\ndef f():\n    time.sleep(random.random())\n"
        assert codes(src) == ["RPR002", "RPR201"]
        assert codes(src, select=["RPR002"]) == ["RPR002"]


VIOLATION = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


class TestBaseline:
    def _findings(self, source, path="pkg/mod.py"):
        return analyze_source(textwrap.dedent(source), path)

    def test_baseline_grandfathers_by_symbol_not_line(self):
        found = self._findings(VIOLATION)
        baseline = Baseline.from_findings(found)
        # Shift every line down: imports added above move the finding's
        # line number, but (file, rule, symbol) still matches.
        shifted = "import os  # new import shifts lines\n" + VIOLATION
        new, old = split_new_findings(self._findings(shifted), baseline)
        assert new == []
        assert [f.rule for f in old] == ["RPR001"]
        assert old[0].line != found[0].line

    def test_extra_occurrence_beyond_budget_is_new(self):
        baseline = Baseline.from_findings(self._findings(VIOLATION))
        doubled = VIOLATION + "    return time.time()\n".replace(
            "    return", "\n\ndef stamp2():\n    return"
        )
        # Same symbol budget consumed once; a second symbol is new.
        new, old = split_new_findings(self._findings(doubled), baseline)
        assert len(old) == 1 and len(new) == 1
        assert new[0].symbol == "stamp2"

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(self._findings(VIOLATION))
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").total == 0

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestRunner:
    def _seed_violation(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "bad.py").write_text(VIOLATION)
        return tree

    def test_run_lint_fails_on_seeded_violation(self, tmp_path):
        """The CI gate: a synthetic violation exits non-zero."""
        tree = self._seed_violation(tmp_path)
        result = run_lint([tree], tmp_path)
        assert result.exit_code == 1
        assert [f.rule for f in result.new] == ["RPR001"]
        assert result.new[0].file == "src/bad.py"

    def test_main_exit_codes(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        root = str(tmp_path)
        assert lint_main(["src", "--root", root]) == 1
        assert lint_main(["src", "--root", root, "--update-baseline"]) == 0
        # Grandfathered now: same findings, exit 0.
        assert lint_main(["src", "--root", root]) == 0
        capsys.readouterr()

    def test_update_baseline_round_trip(self, tmp_path, capsys):
        tree = self._seed_violation(tmp_path)
        assert lint_main(["src", "--root", str(tmp_path), "--update-baseline"]) == 0
        baseline = Baseline.load(tmp_path / "lint-baseline.json")
        result = run_lint([tree], tmp_path)
        assert Baseline.from_findings(result.findings).entries == baseline.entries
        capsys.readouterr()

    def test_json_format_report(self, tmp_path, capsys):
        self._seed_violation(tmp_path)
        out = tmp_path / "report.json"
        code = lint_main(
            [
                "src",
                "--root",
                str(tmp_path),
                "--no-baseline",
                "--format",
                "json",
                "--output",
                str(out),
            ]
        )
        capsys.readouterr()
        assert code == 1
        report = _json.loads(out.read_text())
        assert report["summary"]["new"] == 1
        assert report["new"][0]["rule"] == "RPR001"

    def test_syntax_error_reported_not_raised(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "broken.py").write_text("def f(:\n")
        result = run_lint([tree], tmp_path)
        assert [f.rule for f in result.new] == ["RPR000"]

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main(["nope", "--root", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_repo_tree_is_clean(self, capsys):
        """The committed tree lints clean against the committed baseline."""
        code = lint_main(["src", "benchmarks", "--root", str(REPO_ROOT)])
        capsys.readouterr()
        assert code == 0
