"""Tests for the analysis toolkit (repro.analysis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Ecdf,
    accuracy_auc,
    bar_chart,
    cdf_table,
    curve_table,
    gaussian_tail_split,
    interpolated_steps_to_target,
    is_diverged,
    sparkline,
    speedup_percent,
    summarize,
)


class TestEcdf:
    def test_basic_probabilities(self):
        ecdf = Ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ecdf(0.5) == 0.0
        assert ecdf(2.0) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf(100.0) == 1.0

    def test_quantile_inverts_cdf(self):
        values = np.arange(1, 101, dtype=float)
        ecdf = Ecdf(values)
        assert ecdf.quantile(0.5) == pytest.approx(50.5)
        assert ecdf.quantile(0.0) == 1.0
        assert ecdf.quantile(1.0) == 100.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(0)
        ecdf = Ecdf(rng.normal(size=200))
        xs, ys = ecdf.curve(points=50)
        assert (np.diff(xs) > 0).all()
        assert (np.diff(ys) >= 0).all()
        assert ys[-1] == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Ecdf(np.array([]))
        with pytest.raises(ValueError):
            Ecdf(np.array([np.inf]))
        with pytest.raises(ValueError):
            Ecdf(np.array([1.0])).quantile(1.5)
        with pytest.raises(ValueError):
            Ecdf(np.array([1.0])).curve(points=1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_cdf_properties(self, values):
        ecdf = Ecdf(np.array(values))
        lo, hi = ecdf.support()
        assert ecdf(lo - 1.0) == 0.0
        assert ecdf(hi) == 1.0


class TestSummaries:
    def test_summarize_known_sample(self):
        summary = summarize(np.arange(1, 101, dtype=float))
        assert summary.mean == pytest.approx(50.5)
        assert summary.median == pytest.approx(50.5)
        assert summary.maximum == 100.0
        assert summary.n == 100
        assert summary.p90 <= summary.p99 <= summary.maximum

    def test_row_rendering(self):
        row = summarize(np.array([1.0, 2.0, 3.0])).row(unit="mWh")
        assert "mWh" in row and "n=3" in row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_gaussian_tail_split(self):
        rng = np.random.default_rng(1)
        body = rng.normal(25.0, 8.0, size=2000)
        tail = rng.uniform(150.0, 300.0, size=40)
        split_body, split_tail = gaussian_tail_split(np.concatenate([body, tail]))
        assert split_tail.size >= 35  # nearly all planted outliers isolated
        assert split_body.size >= 1990
        assert split_tail.min() > split_body.max()

    def test_tail_split_validation(self):
        with pytest.raises(ValueError):
            gaussian_tail_split(np.array([]))
        with pytest.raises(ValueError):
            gaussian_tail_split(np.array([1.0]), tail_z=0.0)


class TestConvergenceMetrics:
    def test_interpolated_crossing(self):
        steps = np.array([0, 100, 200])
        accuracy = np.array([0.0, 0.5, 1.0])
        assert interpolated_steps_to_target(steps, accuracy, 0.75) == pytest.approx(150.0)

    def test_target_never_reached(self):
        assert interpolated_steps_to_target(
            np.array([0, 100]), np.array([0.1, 0.2]), 0.9
        ) is None

    def test_first_point_above_target(self):
        assert interpolated_steps_to_target(
            np.array([50, 100]), np.array([0.9, 0.95]), 0.8
        ) == 50.0

    def test_flat_segment_crossing(self):
        steps = np.array([0, 10, 20])
        accuracy = np.array([0.5, 0.8, 0.8])
        assert interpolated_steps_to_target(steps, accuracy, 0.8) == pytest.approx(10.0)

    def test_invalid_curves(self):
        with pytest.raises(ValueError):
            interpolated_steps_to_target(np.array([0, 0]), np.array([0.1, 0.2]), 0.5)
        with pytest.raises(ValueError):
            interpolated_steps_to_target(np.array([]), np.array([]), 0.5)
        with pytest.raises(ValueError):
            accuracy_auc(np.array([1, 2]), np.array([0.5]))

    def test_auc_bounds_and_values(self):
        steps = np.array([0, 100])
        assert accuracy_auc(steps, np.array([1.0, 1.0])) == pytest.approx(1.0)
        assert accuracy_auc(steps, np.array([0.0, 0.0])) == pytest.approx(0.0)
        assert accuracy_auc(steps, np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_auc_single_point(self):
        assert accuracy_auc(np.array([10]), np.array([0.7])) == pytest.approx(0.7)

    def test_speedup_matches_paper_phrasing(self):
        # Baseline 1000 steps, candidate 816: 18.4 % faster (paper's D2 gap).
        assert speedup_percent(1000.0, 816.0) == pytest.approx(18.4)
        assert speedup_percent(None, 100.0) is None
        assert speedup_percent(100.0, None) is None
        with pytest.raises(ValueError):
            speedup_percent(0.0, 10.0)

    def test_is_diverged(self):
        chance = 0.1
        stuck = np.array([0.3, 0.12, 0.09, 0.11])
        learning = np.array([0.1, 0.3, 0.6, 0.8])
        assert is_diverged(stuck, chance)
        assert not is_diverged(learning, chance)
        with pytest.raises(ValueError):
            is_diverged(np.array([]), chance)
        with pytest.raises(ValueError):
            is_diverged(stuck, 1.5)


class TestCharts:
    def test_sparkline_extremes(self):
        line = sparkline(np.array([0.0, 1.0]), low=0.0, high=1.0)
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_series(self):
        assert len(set(sparkline(np.array([2.0, 2.0, 2.0])))) == 1

    def test_sparkline_validation(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))
        with pytest.raises(ValueError):
            sparkline(np.array([1.0]), low=2.0, high=1.0)

    def test_bar_chart_alignment_and_scaling(self):
        chart = bar_chart(["adasgd", "dynsgd"], np.array([10.0, 5.0]), width=10)
        lines = chart.split("\n")
        assert len(lines) == 2
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            bar_chart(["a"], np.array([-1.0]))
        with pytest.raises(ValueError):
            bar_chart([], np.array([]))

    def test_cdf_table_contents(self):
        table = cdf_table(np.arange(100, dtype=float), unit="s")
        assert "n=100" in table and "p90=" in table and "s" in table

    def test_curve_table_downsamples(self):
        steps = np.arange(0, 1000, 10)
        accuracy = np.linspace(0.0, 1.0, steps.size)
        row = curve_table(steps, accuracy, "adasgd", spark_width=20)
        assert "final=1.000" in row and "adasgd" in row

    def test_curve_table_validation(self):
        with pytest.raises(ValueError):
            curve_table(np.array([1, 2]), np.array([0.5]), "x")
