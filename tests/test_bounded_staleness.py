"""Tests for the SSP bounded-staleness arm (core.bounded_staleness)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounded_staleness import (
    SSPGate,
    SSPThroughputReport,
    simulate_ssp_throughput,
)


class TestSSPGate:
    def test_register_starts_at_zero(self):
        gate = SSPGate(bound=3)
        gate.register(0)
        assert gate.clock_of(0) == 0
        assert gate.min_clock == 0

    def test_register_idempotent(self):
        gate = SSPGate(bound=3)
        gate.register(0)
        gate.advance(0)
        gate.register(0)  # must not reset the clock
        assert gate.clock_of(0) == 1

    def test_unregistered_worker_raises(self):
        gate = SSPGate(bound=1)
        with pytest.raises(KeyError, match="not registered"):
            gate.clock_of(7)
        with pytest.raises(KeyError):
            gate.may_proceed(7)

    def test_bound_zero_is_bulk_synchronous(self):
        """bound = 0: nobody may lead; every worker advances in lockstep."""
        gate = SSPGate(bound=0)
        gate.register(0)
        gate.register(1)
        assert gate.may_proceed(0)
        gate.advance(0)
        assert not gate.may_proceed(0)  # now 1 ahead of worker 1
        assert gate.may_proceed(1)
        gate.advance(1)
        assert gate.may_proceed(0)

    def test_lead_within_bound_allowed(self):
        gate = SSPGate(bound=2)
        gate.register(0)
        gate.register(1)
        gate.advance(0)
        gate.advance(0)
        assert gate.may_proceed(0)  # lead == bound is allowed
        gate.advance(0)
        assert not gate.may_proceed(0)  # lead == bound + 1 blocks

    def test_deregister_unblocks_the_fleet(self):
        """A vanished phone must not stall everyone (mobile churn)."""
        gate = SSPGate(bound=1)
        gate.register(0)
        gate.register(1)
        gate.advance(0)
        gate.advance(0)
        assert not gate.may_proceed(0)  # blocked on worker 1
        gate.deregister(1)
        assert gate.may_proceed(0)

    def test_deregister_unknown_is_noop(self):
        SSPGate(bound=1).deregister(99)

    def test_max_observable_staleness(self):
        gate = SSPGate(bound=5)
        gate.register(0)
        gate.register(1)
        for _ in range(4):
            gate.advance(0)
        assert gate.max_observable_staleness() == 4
        assert gate.max_observable_staleness() <= gate.bound + 1 + 4

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            SSPGate(bound=-1)

    @given(
        st.lists(st.integers(0, 4), min_size=1, max_size=60),
        st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariant_admitted_lead_never_exceeds_bound(self, schedule, bound):
        """If every advance is gated by may_proceed, the lead stays ≤ bound+1.

        (After an admitted task completes the lead can reach bound + 1, but
        never beyond, because the next attempt is blocked.)
        """
        gate = SSPGate(bound=bound)
        for worker in range(5):
            gate.register(worker)
        for worker in schedule:
            if gate.may_proceed(worker):
                gate.advance(worker)
            assert gate.max_observable_staleness() <= bound + 1


class TestSSPThroughput:
    def test_unbounded_equivalent_with_huge_bound(self, rng):
        rates = np.array([1.0, 0.5, 0.1])
        report = simulate_ssp_throughput(rates, bound=10_000, horizon_s=600.0, rng=rng)
        assert report.blocked_attempts == 0
        assert report.throughput_fraction == 1.0

    def test_tight_bound_blocks_fast_workers(self, rng):
        """A 10× speed spread under a tight bound must lose throughput —
        the paper's §4 argument for why Online FL cannot bound staleness."""
        rates = np.array([2.0, 0.2])
        report = simulate_ssp_throughput(rates, bound=1, horizon_s=600.0, rng=rng)
        assert report.blocked_attempts > 0
        assert report.throughput_fraction < 0.8

    def test_throughput_monotone_in_bound(self):
        rates = np.array([1.5, 0.6, 0.15])
        fractions = []
        for bound in (0, 2, 8, 64):
            rng = np.random.default_rng(11)
            report = simulate_ssp_throughput(rates, bound, horizon_s=400.0, rng=rng)
            fractions.append(report.throughput_fraction)
        assert fractions == sorted(fractions)

    def test_report_accounting(self, rng):
        rates = np.array([1.0, 1.0])
        report = simulate_ssp_throughput(rates, bound=0, horizon_s=200.0, rng=rng)
        assert report.total_updates + report.blocked_attempts == report.unbounded_updates

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            simulate_ssp_throughput(np.array([]), 1, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_ssp_throughput(np.array([0.0]), 1, 10.0, rng)
        with pytest.raises(ValueError):
            simulate_ssp_throughput(np.array([1.0]), 1, 0.0, rng)

    def test_empty_horizon_report_is_neutral(self):
        report = SSPThroughputReport(
            bound=1, total_updates=0, unbounded_updates=0, blocked_attempts=0
        )
        assert report.throughput_fraction == 1.0
