"""Tests for the synthetic image-dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_images import (
    make_cifar100_like,
    make_emnist_like,
    make_image_dataset,
    make_mnist_like,
)
from repro.nn.models import build_logistic


class TestGeometry:
    def test_mnist_like_shapes(self):
        ds = make_mnist_like(train_per_class=5, test_per_class=2)
        assert ds.train_x.shape == (50, 1, 28, 28)
        assert ds.test_x.shape == (20, 1, 28, 28)
        assert ds.num_classes == 10

    def test_emnist_like_shapes(self):
        ds = make_emnist_like(train_per_class=2, test_per_class=1)
        assert ds.train_x.shape == (124, 1, 28, 28)
        assert ds.num_classes == 62

    def test_cifar100_like_shapes(self):
        ds = make_cifar100_like(train_per_class=2, test_per_class=1)
        assert ds.train_x.shape == (200, 3, 32, 32)
        assert ds.num_classes == 100

    def test_pixel_range(self):
        ds = make_mnist_like(train_per_class=3, test_per_class=1)
        assert ds.train_x.min() >= 0.0
        assert ds.train_x.max() <= 1.0

    def test_all_classes_present(self):
        ds = make_mnist_like(train_per_class=4, test_per_class=2)
        assert set(np.unique(ds.train_y)) == set(range(10))
        assert set(np.unique(ds.test_y)) == set(range(10))


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make_mnist_like(seed=3, train_per_class=3, test_per_class=1)
        b = make_mnist_like(seed=3, train_per_class=3, test_per_class=1)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.train_y, b.train_y)

    def test_different_seed_different_data(self):
        a = make_mnist_like(seed=3, train_per_class=3, test_per_class=1)
        b = make_mnist_like(seed=4, train_per_class=3, test_per_class=1)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_train_test_disjoint_noise(self):
        ds = make_mnist_like(seed=0, train_per_class=3, test_per_class=3)
        assert not np.array_equal(ds.train_x[:10], ds.test_x[:10])


class TestLearnability:
    def test_linear_model_beats_chance(self):
        """The dataset must be learnable — otherwise convergence benches
        would measure nothing."""
        ds = make_image_dataset(
            num_classes=5, channels=1, side=12,
            train_per_class=40, test_per_class=15, seed=1,
        )
        rng = np.random.default_rng(0)
        model = build_logistic(rng, 12 * 12, 5)
        params = model.get_parameters()
        for _ in range(300):
            pick = rng.choice(ds.train_x.shape[0], size=32, replace=False)
            model.set_parameters(params)
            _, grad = model.compute_gradient(ds.train_x[pick], ds.train_y[pick])
            params = params - 0.5 * grad
        model.set_parameters(params)
        acc = model.evaluate_accuracy(ds.test_x, ds.test_y)
        assert acc > 0.5   # chance is 0.2

    def test_noise_makes_task_nontrivial(self):
        """Samples of the same class must differ (no trivially constant data)."""
        ds = make_mnist_like(train_per_class=5, test_per_class=1)
        cls0 = ds.train_x[ds.train_y == 0]
        assert not np.allclose(cls0[0], cls0[1])


class TestValidation:
    def test_mismatched_shapes_rejected(self):
        from repro.data.synthetic_images import ImageDataset

        with pytest.raises(ValueError):
            ImageDataset(
                train_x=np.zeros((3, 1, 4, 4)),
                train_y=np.zeros(2, dtype=np.int64),
                test_x=np.zeros((1, 1, 4, 4)),
                test_y=np.zeros(1, dtype=np.int64),
                num_classes=2,
            )

    def test_subset(self):
        ds = make_mnist_like(train_per_class=3, test_per_class=1)
        x, y = ds.subset(np.array([0, 5]))
        assert x.shape[0] == 2
        assert np.array_equal(y, ds.train_y[[0, 5]])

    def test_input_shape_property(self):
        ds = make_mnist_like(train_per_class=2, test_per_class=1)
        assert ds.input_shape == (1, 28, 28)
