"""Tests for BatchNorm2D / LayerNorm (nn.normalization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_model_gradients, max_relative_error, numerical_gradient
from repro.nn.layers import Dense, Flatten
from repro.nn.models import Sequential
from repro.nn.normalization import BatchNorm2D, LayerNorm


class TestBatchNorm2D:
    def test_training_output_is_normalized(self, rng):
        layer = BatchNorm2D(3)
        x = rng.normal(5.0, 3.0, size=(16, 3, 4, 4))
        out = layer.forward(x, train=True)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_converge_to_population(self, rng):
        layer = BatchNorm2D(2, momentum=0.5)
        for _ in range(60):
            layer.forward(rng.normal(3.0, 2.0, size=(32, 2, 3, 3)), train=True)
        assert np.allclose(layer.running_mean, 3.0, atol=0.3)
        assert np.allclose(layer.running_var, 4.0, atol=0.8)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm2D(2, momentum=0.0)  # running stats = last batch
        x = rng.normal(1.0, 1.0, size=(64, 2, 3, 3))
        layer.forward(x, train=True)
        # A wildly shifted eval batch must be normalized by *training* stats.
        shifted = rng.normal(50.0, 1.0, size=(8, 2, 3, 3))
        out = layer.forward(shifted, train=False)
        assert out.mean() > 10.0  # not re-centred to zero

    def test_gamma_beta_in_wire_vector_but_not_running_stats(self, rng):
        layer = BatchNorm2D(4)
        model = Sequential([layer, Flatten(), Dense(4 * 2 * 2, 3, rng=rng)])
        vector = model.get_parameters()
        assert vector.size == layer.num_parameters + 4 * 2 * 2 * 3 + 3
        layer.running_mean[:] = 9.0
        assert model.get_parameters().size == vector.size  # state not shipped

    def test_gradcheck_through_batchnorm(self, rng):
        model = Sequential(
            [BatchNorm2D(2), Flatten(), Dense(2 * 3 * 3, 4, rng=rng)]
        )
        x = rng.normal(size=(8, 2, 3, 3))
        y = rng.integers(0, 4, size=8)
        error = check_model_gradients(model, x, y, sample=30, rng=rng)
        assert error < 1e-5

    def test_input_shape_validation(self, rng):
        layer = BatchNorm2D(3)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(rng.normal(size=(4, 2, 3, 3)), train=True)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 3)), train=True)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        with pytest.raises(ValueError):
            BatchNorm2D(2, momentum=1.0)
        with pytest.raises(ValueError):
            BatchNorm2D(2, eps=0.0)

    def test_backward_requires_train_forward(self, rng):
        layer = BatchNorm2D(2)
        layer.forward(rng.normal(size=(4, 2, 3, 3)), train=False)
        with pytest.raises(AssertionError):
            layer.backward(np.ones((4, 2, 3, 3)))


class TestLayerNorm:
    def test_output_normalized_per_row(self, rng):
        layer = LayerNorm(16)
        x = rng.normal(2.0, 5.0, size=(10, 16))
        out = layer.forward(x, train=True)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_works_on_3d_sequences(self, rng):
        layer = LayerNorm(8)
        x = rng.normal(size=(4, 5, 8))
        out = layer.forward(x, train=True)
        assert out.shape == x.shape
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)

    def test_gradcheck(self, rng):
        model = Sequential([LayerNorm(12), Dense(12, 5, rng=rng)])
        x = rng.normal(size=(7, 12))
        y = rng.integers(0, 5, size=7)
        error = check_model_gradients(model, x, y, sample=30, rng=rng)
        assert error < 1e-5

    def test_input_gradient_matches_finite_differences(self, rng):
        layer = LayerNorm(6)
        x = rng.normal(size=(3, 6))
        weights = rng.normal(size=(3, 6))

        def loss(v):
            return float((layer.forward(v, train=True) * weights).sum())

        numeric = numerical_gradient(loss, x.copy())
        layer.forward(x, train=True)
        analytic = layer.backward(weights)
        assert max_relative_error(analytic, numeric) < 1e-6

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="last axis"):
            LayerNorm(8).forward(rng.normal(size=(4, 7)), train=True)

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            LayerNorm(0)
        with pytest.raises(ValueError):
            LayerNorm(4, eps=-1.0)

    def test_identity_at_init_up_to_normalization(self, rng):
        """gamma=1, beta=0 at init: output is exactly the normalized input."""
        layer = LayerNorm(5)
        x = rng.normal(size=(6, 5))
        out = layer.forward(x, train=True)
        mean = x.mean(axis=-1, keepdims=True)
        std = np.sqrt(x.var(axis=-1, keepdims=True) + layer.eps)
        assert np.allclose(out, (x - mean) / std)
