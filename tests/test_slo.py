"""Tests for the serving-tier SLO engine, alerting, and health surface.

Covers: spec validation, tracker window math over synthetic cumulative
SLIs, multi-window fire/resolve hysteresis (fast reacts, slow confirms),
journaled alert records, bit-identical alert sequences across same-seed
virtual-clock runs, the gateway health snapshot (strict JSON, crashed
shards reported down), and the autoscaler's opt-in alert-driven
scale-up pressure.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import ElasticityPolicy, FleetBuilder, RuntimeSpec
from repro.core import make_fedavg
from repro.devices.device import DeviceFeatures
from repro.durability import DurabilitySpec
from repro.gateway import AggregationCostModel, Gateway, GatewayConfig
from repro.observability import EventJournal, SLOEngine, SLOSpec, SLOTracker
from repro.profiler import IProf, SLO
from repro.server import FleetServer
from repro.server.protocol import TaskResult

DIM = 32

# Windows sized for tests: alerts move within a few dozen virtual seconds.
_SPEC = SLOSpec(
    latency_bound_s=1.0,
    fast_window_s=10.0,
    slow_window_s=40.0,
    evaluate_every_s=1.0,
)


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _result(worker_id: int, gradient: np.ndarray, pull_step: int = 0) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=gradient,
        label_counts=np.ones(10),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _spec():
    builder = FleetBuilder(np.zeros(DIM), num_labels=10).slo(3.0)
    builder.algorithm("fedavg", learning_rate=0.05)
    return builder.spec()


def _gateway(slo: SLOSpec = _SPEC, runtime: RuntimeSpec | None = None) -> Gateway:
    return Gateway.from_spec(
        1,
        _spec(),
        GatewayConfig(batch_size=4, batch_deadline_s=5.0, sync_every_s=1e9),
        cost_model=AggregationCostModel(per_flush_s=0.5, per_result_s=0.1),
        runtime=runtime,
        slo=slo,
    )


def _drive(gateway: Gateway, uploads: int = 200, workers: int = 8) -> None:
    rng = np.random.default_rng(7)
    for i in range(uploads):
        gateway.handle_result(
            _result(i % workers, rng.normal(size=DIM)), now=i * 0.25
        )
    gateway.finalize(now=uploads * 0.25 + 10.0)


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
class TestSLOSpec:
    def test_defaults_are_valid(self):
        spec = SLOSpec()
        assert spec.latency_objective == 0.95
        assert spec.slow_window_s > spec.fast_window_s

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"latency_objective": 0.0},
            {"latency_objective": 1.0},
            {"availability_objective": 1.5},
            {"latency_bound_s": 0.0},
            {"staleness_bound": -1.0},
            {"fast_window_s": 0.0},
            {"slow_window_s": 300.0, "fast_window_s": 300.0},
            {"fire_burn_rate": 1.0, "resolve_burn_rate": 1.0},
            {"resolve_burn_rate": 0.0},
            {"evaluate_every_s": 0.0},
            {"evaluate_every_s": 400.0, "fast_window_s": 300.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            SLOSpec(**kwargs)


# ----------------------------------------------------------------------
# Tracker window math on a synthetic SLI
# ----------------------------------------------------------------------
class _FakeSLI:
    """Scriptable cumulative (good, total) source."""

    def __init__(self) -> None:
        self.good = 0.0
        self.total = 0.0

    def add(self, good: float, bad: float) -> None:
        self.good += good
        self.total += good + bad

    def __call__(self) -> tuple[float, float]:
        return self.good, self.total


class TestSLOTracker:
    def test_eventless_window_burns_zero(self):
        tracker = SLOTracker("x", 0.95, _SPEC, _FakeSLI())
        tracker.observe(0.0)
        status = tracker.status(0.0, firing=False)
        assert status.bad_fraction_fast == 0.0
        assert status.burn_rate_slow == 0.0
        assert status.budget_remaining == 1.0

    def test_window_deltas_not_lifetime_totals(self):
        sli = _FakeSLI()
        tracker = SLOTracker("x", 0.90, _SPEC, sli)
        # 20s of all-bad events, then 20s of all-good: the fast window
        # (10s) must see only the recent good run while the slow window
        # (40s) still remembers the bad stretch.
        for t in range(20):
            sli.add(good=0.0, bad=5.0)
            tracker.observe(float(t))
        for t in range(20, 40):
            sli.add(good=5.0, bad=0.0)
            tracker.observe(float(t))
        status = tracker.status(39.0, firing=False)
        assert status.bad_fraction_fast == 0.0
        # Slow window spans both stretches: roughly half its events bad.
        assert 0.3 < status.bad_fraction_slow < 0.7
        # Burn rate is bad fraction over the 10% budget.
        assert status.burn_rate_slow == pytest.approx(
            status.bad_fraction_slow / 0.1
        )

    def test_prunes_but_keeps_slow_window_base(self):
        sli = _FakeSLI()
        tracker = SLOTracker("x", 0.95, _SPEC, sli)
        for t in range(500):
            sli.add(good=1.0, bad=0.0)
            tracker.observe(float(t))
        # Retention is bounded by the slow window, not the run length.
        assert len(tracker._samples) <= _SPEC.slow_window_s + 2
        # A delta across the full slow window is still answerable.
        status = tracker.status(499.0, firing=False)
        assert status.bad_fraction_slow == 0.0


# ----------------------------------------------------------------------
# Fire/resolve hysteresis
# ----------------------------------------------------------------------
def _engine(sli: _FakeSLI, journal: EventJournal | None = None) -> SLOEngine:
    tracker = SLOTracker("latency", 0.90, _SPEC, sli)
    return SLOEngine(_SPEC, [tracker], journal=journal)


class TestAlertHysteresis:
    def test_fast_spike_alone_does_not_fire(self):
        sli = _FakeSLI()
        engine = _engine(sli)
        # Long good history fills the slow window...
        for t in range(40):
            sli.add(good=10.0, bad=0.0)
            engine.evaluate(float(t))
        # ...then a short, violent burst of bad events: the fast window
        # burns hot but the slow window still confirms nothing.
        sli.add(good=0.0, bad=100.0)
        statuses = engine.evaluate(40.0)
        assert statuses["latency"].burn_rate_fast >= _SPEC.fire_burn_rate
        assert statuses["latency"].burn_rate_slow < _SPEC.fire_burn_rate
        assert not statuses["latency"].firing
        assert engine.active_alerts() == ()

    def test_fire_then_resolve_sequence(self):
        journal = EventJournal()
        sli = _FakeSLI()
        engine = _engine(sli, journal=journal)
        # Sustained badness: both windows above the fire threshold.
        for t in range(15):
            sli.add(good=1.0, bad=9.0)
            engine.evaluate(float(t))
        assert engine.active_alerts() == ("latency",)
        assert engine.alerts.fired == 1
        # Recovery: the fast window empties of bad events and the alert
        # resolves, even while the slow window still carries the incident.
        for t in range(15, 30):
            sli.add(good=10.0, bad=0.0)
            engine.evaluate(float(t))
        assert engine.active_alerts() == ()
        assert engine.alerts.resolved == 1

        kinds = [e["kind"] for e in journal.to_dicts()]
        assert kinds == ["alert_fire", "alert_resolve"]
        fire, resolve = journal.to_dicts()
        assert fire["slo"] == "latency"
        assert fire["burn_rate_fast"] >= _SPEC.fire_burn_rate
        assert resolve["duration_s"] > 0

    def test_no_refire_while_active(self):
        sli = _FakeSLI()
        engine = _engine(sli)
        for t in range(30):
            sli.add(good=0.0, bad=10.0)
            engine.evaluate(float(t))
        # One continuous incident journals exactly one fire.
        assert engine.alerts.fired == 1
        assert engine.active_alerts() == ("latency",)


# ----------------------------------------------------------------------
# Gateway integration
# ----------------------------------------------------------------------
class TestGatewayIntegration:
    def test_latency_alert_fires_on_slow_tier(self):
        # per_flush 0.5s + per_result 0.1s against a 1s bound: most
        # uploads blow the latency budget, so the objective must fire.
        gateway = _gateway()
        _drive(gateway)
        assert gateway.slo_engine.evaluations > 0
        assert "upload_latency" in gateway.slo_engine.active_alerts()
        fires = [
            e for e in gateway.journal.to_dicts() if e["kind"] == "alert_fire"
        ]
        assert any(e["slo"] == "upload_latency" for e in fires)

    def test_snapshot_is_strict_json(self):
        gateway = _gateway()
        _drive(gateway, uploads=60)
        document = gateway.slo_engine.snapshot()
        parsed = json.loads(json.dumps(document, allow_nan=False))
        assert set(parsed["objectives"]) == {
            "upload_latency",
            "shed_rate",
            "applied_staleness",
            "availability",
        }
        assert parsed["evaluations"] == gateway.slo_engine.evaluations

    def test_alert_sequence_bit_identical_across_runs(self):
        def run() -> tuple[list[dict], dict]:
            gateway = _gateway()
            _drive(gateway)
            alerts = [
                e
                for e in gateway.journal.to_dicts()
                if e["kind"] in ("alert_fire", "alert_resolve")
            ]
            return alerts, gateway.slo_engine.snapshot()

        first_alerts, first_snapshot = run()
        second_alerts, second_snapshot = run()
        assert first_alerts  # the scenario actually alerts
        assert first_alerts == second_alerts
        assert first_snapshot == second_snapshot

    def test_engine_off_by_default(self):
        gateway = Gateway.from_spec(
            1,
            _spec(),
            GatewayConfig(batch_size=4, batch_deadline_s=5.0, sync_every_s=1e9),
            cost_model=AggregationCostModel(per_flush_s=0.5, per_result_s=0.1),
        )
        assert gateway.slo_engine is None
        assert gateway.upload_latency_hist is None
        _drive(gateway, uploads=20)  # no crash without the engine

    def test_alert_pressure_scales_the_tier_up(self):
        # Thresholds parked out of reach: only the firing latency alert
        # can supply scale-up pressure.
        policy = ElasticityPolicy(
            min_shards=1,
            max_shards=4,
            window_s=5.0,
            cooldown_s=5.0,
            scale_up_occupancy=0.99,
            scale_up_backlog_s=1e9,
            scale_up_queue_depth=1e9,
            scale_up_shed_rate=1e9,
            scale_up_on_alert=True,
        )
        runtime = RuntimeSpec(
            mode="async", executor="virtual", queue_capacity=64,
            autoscale=policy,
        )
        gateway = _gateway(runtime=runtime)
        _drive(gateway)
        assert gateway.num_shards > 1
        assert any(
            "slo alert" in event.reason for event in gateway.autoscaler.events
        )

    def test_alert_flag_off_means_no_alert_pressure(self):
        policy = ElasticityPolicy(
            min_shards=1,
            max_shards=4,
            window_s=5.0,
            cooldown_s=5.0,
            scale_up_occupancy=0.99,
            scale_up_backlog_s=1e9,
            scale_up_queue_depth=1e9,
            scale_up_shed_rate=1e9,
            scale_up_on_alert=False,
        )
        runtime = RuntimeSpec(
            mode="async", executor="virtual", queue_capacity=64,
            autoscale=policy,
        )
        gateway = _gateway(runtime=runtime)
        _drive(gateway)
        assert gateway.num_shards == 1


# ----------------------------------------------------------------------
# Health surface
# ----------------------------------------------------------------------
def _durable_gateway(tmp_path, shards: int = 3) -> Gateway:
    return Gateway.from_factory(
        shards,
        lambda i: FleetServer(
            make_fedavg(np.zeros(DIM), learning_rate=0.05),
            IProf(),
            SLO(time_seconds=3.0),
        ),
        GatewayConfig(batch_size=2, batch_deadline_s=1.0, sync_every_s=1e9),
        durability=DurabilitySpec(
            root_dir=tmp_path / "dur",
            checkpoint_every_updates=5,
            detector_timeout_s=10.0,
        ),
        slo=_SPEC,
    )


class TestHealthSnapshot:
    def test_healthy_tier_is_ok_and_strict_json(self, tmp_path):
        gateway = _durable_gateway(tmp_path)
        rng = np.random.default_rng(3)
        for i in range(12):
            gateway.handle_result(
                _result(i % 4, rng.normal(size=DIM)), now=float(i)
            )
        health = gateway.health_snapshot()
        json.dumps(health, allow_nan=False)  # strict JSON or raise
        assert health["status"] in ("ok", "degraded")
        assert health["num_shards"] == 3
        assert health["crashed_shards"] == []
        for doc in health["shards"].values():
            assert doc["status"] in ("ok", "suspect")
            assert doc["wal"] is not None
            assert doc["wal"]["next_seq"] >= 0
            assert doc["wal"]["checkpoint_lag_clock"] >= 0

    def test_crashed_shard_reports_down(self, tmp_path):
        gateway = _durable_gateway(tmp_path)
        rng = np.random.default_rng(3)
        for i in range(12):
            gateway.handle_result(
                _result(i % 4, rng.normal(size=DIM)), now=float(i)
            )
        victim = sorted(gateway.shards)[0]
        gateway.crash_shard(victim, now=13.0)
        # Park one more result for the dead shard so the snapshot has
        # something to count.
        health = gateway.health_snapshot(now=14.0)
        json.dumps(health, allow_nan=False)
        assert health["status"] == "degraded"
        assert victim in health["crashed_shards"]
        doc = health["shards"][victim]
        assert doc["status"] == "down"
        assert doc["clock"] is None
        assert doc["restore_pending"] is True  # factory retained

        gateway.failover(victim, now=15.0)
        recovered = gateway.health_snapshot(now=16.0)
        assert victim not in recovered["crashed_shards"]
        assert recovered["shards"][victim]["status"] in ("ok", "suspect")

    def test_empty_tier_is_unavailable(self, tmp_path):
        gateway = _durable_gateway(tmp_path, shards=1)
        victim = sorted(gateway.shards)[0]
        gateway.handle_result(_result(0, np.zeros(DIM)), now=0.0)
        gateway.crash_shard(victim, now=1.0)
        health = gateway.health_snapshot(now=2.0)
        assert health["status"] == "unavailable"
        assert health["num_shards"] == 0
