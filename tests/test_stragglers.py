"""Tests for dynamic straggler detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import DynamicStragglerDetector


class TestDetector:
    def test_warmup_flags_nothing(self):
        detector = DynamicStragglerDetector(min_samples=10)
        for _ in range(9):
            assert not detector.observe(1.0)
        assert detector.threshold() is None

    def test_detects_outlier(self):
        detector = DynamicStragglerDetector(k=3.0, min_samples=10)
        rng = np.random.default_rng(0)
        for _ in range(100):
            detector.observe(float(rng.normal(10.0, 1.0)))
        assert detector.observe(30.0)
        assert not detector.observe(10.5)

    def test_threshold_tracks_distribution_shift(self):
        detector = DynamicStragglerDetector(k=3.0, window=50, min_samples=10)
        for _ in range(50):
            detector.observe(1.0 + 0.01 * np.random.default_rng(1).random())
        low = detector.threshold()
        for _ in range(50):
            detector.observe(100.0 + np.random.default_rng(2).random())
        high = detector.threshold()
        assert high > low * 10

    def test_non_straggler_percent(self):
        detector = DynamicStragglerDetector(k=3.0, min_samples=5)
        rng = np.random.default_rng(3)
        for _ in range(200):
            detector.observe(float(rng.normal(10.0, 0.5)))
        for _ in range(20):
            detector.observe(100.0)
        s = detector.non_straggler_percent()
        assert 80.0 < s < 99.0

    def test_gaussian_false_positive_rate(self):
        """With k=3 and Gaussian latencies, ~99.7 % must be non-stragglers."""
        detector = DynamicStragglerDetector(k=3.0, window=1000, min_samples=30)
        rng = np.random.default_rng(4)
        for _ in range(3000):
            detector.observe(float(rng.normal(8.0, 1.5)))
        assert detector.non_straggler_percent() > 98.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicStragglerDetector(k=0.0)
        with pytest.raises(ValueError):
            DynamicStragglerDetector(min_samples=1)
        with pytest.raises(ValueError):
            DynamicStragglerDetector().observe(-1.0)
