"""Tests for the end-to-end middleware simulation (simulation.fleet_sim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adasgd import make_adasgd
from repro.data.federated_split import iid_split
from repro.nn.models import build_logistic
from repro.profiler.coldstart import collect_offline_dataset
from repro.profiler.iprof import IProf, SLO
from repro.server.server import FleetServer
from repro.simulation.fleet_sim import FleetSimConfig, FleetSimulation


def _build_simulation(
    tiny_dataset,
    rng,
    num_users: int = 8,
    config: FleetSimConfig | None = None,
) -> FleetSimulation:
    from repro.devices.catalog import fleet_specs
    from repro.devices.device import SimulatedDevice

    model = build_logistic(
        rng,
        in_features=int(np.prod(tiny_dataset.train_x.shape[1:])),
        num_classes=tiny_dataset.num_classes,
    )
    iprof = IProf()
    training = [
        SimulatedDevice(spec, np.random.default_rng(100 + i))
        for i, spec in enumerate(fleet_specs(4, np.random.default_rng(5)))
    ]
    xs, ys = collect_offline_dataset(training, slo_seconds=3.0, kind="time")
    iprof.pretrain_time(xs, ys)
    server = FleetServer(
        optimizer=make_adasgd(
            model.get_parameters(),
            num_labels=tiny_dataset.num_classes,
            learning_rate=0.05,
            initial_tau_thres=12.0,
        ),
        profiler=iprof,
        slo=SLO(time_seconds=3.0),
    )
    partition = iid_split(tiny_dataset.train_y, num_users, rng)
    return FleetSimulation(
        server=server,
        model=model,
        dataset=tiny_dataset,
        partition=partition,
        rng=rng,
        config=config
        or FleetSimConfig(horizon_s=1800.0, mean_think_time_s=30.0),
    )


class TestFleetSimConfig:
    def test_defaults_valid(self):
        FleetSimConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon_s": 0.0},
            {"mean_think_time_s": 0.0},
            {"abort_probability": 1.0},
            {"abort_probability": -0.1},
            {"battery_floor_percent": 100.0},
            {"eval_every_updates": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetSimConfig(**kwargs)


class TestFleetSimulation:
    def test_run_produces_updates_and_accuracy(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        result = sim.run()
        assert sim.server.clock > 0
        assert result.completed > 0
        assert result.eval_accuracy, "at least one evaluation must happen"
        assert 0.0 <= result.final_accuracy() <= 1.0

    def test_request_accounting_balances(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        result = sim.run()
        assert result.requests == result.rejections + result.completed + result.aborted
        per_user = [
            (state.requests, state.rejections, state.completed, state.aborted)
            for state in sim.participants
        ]
        assert sum(r for r, _, _, _ in per_user) == result.requests
        assert sum(c for _, _, c, _ in per_user) == result.completed

    def test_staleness_is_endogenous_and_nonnegative(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        result = sim.run()
        staleness = result.applied_staleness(sim.server)
        assert staleness.size == sim.server.clock  # K = 1: one per update
        assert (staleness >= 0).all()
        # With 8 racing users some overlap must occur.
        assert staleness.max() >= 1

    def test_energy_split_between_compute_and_radio(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        result = sim.run()
        assert sum(result.compute_energy_mwh) > 0
        assert sum(result.radio_energy_mwh) > 0
        assert result.total_energy_mwh() == pytest.approx(
            sum(result.compute_energy_mwh) + sum(result.radio_energy_mwh)
        )

    def test_churn_drops_results_but_charges_energy(self, tiny_dataset, rng):
        config = FleetSimConfig(
            horizon_s=1800.0, mean_think_time_s=20.0, abort_probability=0.6
        )
        sim = _build_simulation(tiny_dataset, rng, config=config)
        result = sim.run()
        assert result.aborted > 0
        assert result.completion_rate() < 1.0
        # Aborted tasks still spent energy: energy records cover all tasks.
        assert len(result.compute_energy_mwh) == result.completed + result.aborted

    def test_no_churn_means_full_completion(self, tiny_dataset, rng):
        config = FleetSimConfig(
            horizon_s=900.0, mean_think_time_s=30.0, abort_probability=0.0
        )
        sim = _build_simulation(tiny_dataset, rng, config=config)
        result = sim.run()
        assert result.aborted == 0
        assert result.completion_rate() == 1.0

    def test_battery_floor_suspends_devices(self, tiny_dataset, rng):
        config = FleetSimConfig(
            horizon_s=3600.0,
            mean_think_time_s=5.0,
            battery_floor_percent=99.95,  # almost immediately below floor
        )
        sim = _build_simulation(tiny_dataset, rng, config=config)
        result = sim.run()
        assert result.suspended_devices > 0
        suspended = [s for s in sim.participants if s.suspended]
        assert len(suspended) == result.suspended_devices

    def test_round_trip_decomposition(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        result = sim.run()
        for total, compute, network in zip(
            result.round_trip_seconds,
            result.compute_seconds,
            result.network_seconds,
        ):
            assert total == pytest.approx(compute + network)
            assert compute > 0 and network > 0

    def test_deterministic_given_seed(self, tiny_dataset):
        result_a = _build_simulation(tiny_dataset, np.random.default_rng(77)).run()
        result_b = _build_simulation(tiny_dataset, np.random.default_rng(77)).run()
        assert result_a.completed == result_b.completed
        assert result_a.eval_accuracy == result_b.eval_accuracy
        assert result_a.round_trip_seconds == result_b.round_trip_seconds

    def test_model_learns_over_the_horizon(self, tiny_dataset):
        rng = np.random.default_rng(3)
        config = FleetSimConfig(
            horizon_s=7200.0, mean_think_time_s=10.0, eval_every_updates=25
        )
        sim = _build_simulation(tiny_dataset, rng, num_users=6, config=config)
        result = sim.run()
        chance = 1.0 / tiny_dataset.num_classes
        assert result.final_accuracy() > chance + 0.15

    def test_virtual_time_monotone_in_evals(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        result = sim.run()
        assert result.eval_times_s == sorted(result.eval_times_s)
        assert result.eval_steps == sorted(result.eval_steps)


class TestActivityGating:
    def test_gated_requests_skip_out_of_session(self, tiny_dataset, rng):
        config = FleetSimConfig(
            horizon_s=3600.0, mean_think_time_s=30.0, gate_on_app_session=True,
        )
        sim = _build_simulation(tiny_dataset, rng, config=config)
        result = sim.run()
        # Users are out of session most of the day, so skips must dominate.
        assert result.skipped_inactive > 0
        per_user_skips = sum(s.skipped_inactive for s in sim.participants)
        assert per_user_skips == result.skipped_inactive
        # Skipped attempts are not requests: accounting still balances.
        assert result.requests == (
            result.rejections + result.completed + result.aborted
        )

    def test_gating_reduces_task_volume(self, tiny_dataset):
        base = _build_simulation(
            tiny_dataset, np.random.default_rng(5),
            config=FleetSimConfig(horizon_s=1800.0, mean_think_time_s=30.0),
        ).run()
        gated = _build_simulation(
            tiny_dataset, np.random.default_rng(5),
            config=FleetSimConfig(
                horizon_s=1800.0, mean_think_time_s=30.0,
                gate_on_app_session=True,
            ),
        ).run()
        assert gated.requests < base.requests

    def test_ungated_simulation_has_no_activity_models(self, tiny_dataset, rng):
        sim = _build_simulation(tiny_dataset, rng)
        assert all(state.activity is None for state in sim.participants)
        assert sim.run().skipped_inactive == 0


class TestUploadSparsification:
    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FleetSimConfig(sparsify_fraction=0.0)
        with pytest.raises(ValueError):
            FleetSimConfig(sparsify_fraction=1.5)

    def test_sparsified_uploads_cut_network_time(self, tiny_dataset):
        dense = _build_simulation(
            tiny_dataset, np.random.default_rng(21),
            config=FleetSimConfig(horizon_s=900.0, mean_think_time_s=30.0),
        ).run()
        sparse = _build_simulation(
            tiny_dataset, np.random.default_rng(21),
            config=FleetSimConfig(
                horizon_s=900.0, mean_think_time_s=30.0, sparsify_fraction=0.05,
            ),
        ).run()
        assert np.median(sparse.network_seconds) < np.median(dense.network_seconds)

    def test_error_feedback_preserves_learning(self, tiny_dataset):
        config = FleetSimConfig(
            horizon_s=5400.0, mean_think_time_s=10.0, sparsify_fraction=0.1,
            eval_every_updates=50,
        )
        sim = _build_simulation(
            tiny_dataset, np.random.default_rng(4), num_users=6, config=config,
        )
        result = sim.run()
        chance = 1.0 / tiny_dataset.num_classes
        assert result.final_accuracy() > chance + 0.15

    def test_compressor_state_is_per_worker(self, tiny_dataset, rng):
        config = FleetSimConfig(
            horizon_s=600.0, mean_think_time_s=30.0, sparsify_fraction=0.1,
        )
        sim = _build_simulation(tiny_dataset, rng, config=config)
        assert sim._compressors is not None
        assert len(sim._compressors) == len(sim.participants)
        sim.run()
        # Error feedback accumulated residual mass somewhere.
        assert any(np.abs(c.residual).sum() > 0 for c in sim._compressors)

    def test_aborted_upload_restores_residual(self, tiny_dataset):
        """An aborted task's shipped component returns to the residual.

        The compressor absorbs the dropped coordinates at compress time on
        the assumption the payload lands.  When the task aborts, the sim
        must call ``restore`` so the next upload compensates for the FULL
        gradient — observable as the residual holding the whole corrected
        gradient (not just the dropped coordinates) right after an abort.
        """
        from repro.server.sparsification import ErrorFeedbackCompressor

        config = FleetSimConfig(
            horizon_s=1200.0, mean_think_time_s=20.0,
            abort_probability=0.7, sparsify_fraction=0.1,
        )
        sim = _build_simulation(tiny_dataset, np.random.default_rng(13), config=config)

        restored: list[int] = []
        original_restore = ErrorFeedbackCompressor.restore

        def spying_restore(self, sparse):
            restored.append(sparse.values.size)
            return original_restore(self, sparse)

        ErrorFeedbackCompressor.restore = spying_restore
        try:
            result = sim.run()
        finally:
            ErrorFeedbackCompressor.restore = original_restore
        assert result.aborted > 0
        # Every abort put its undelivered payload back.
        assert len(restored) == result.aborted
