"""End-to-end integration: the full middleware on a virtual-time event loop.

Unlike the controlled-staleness runner (which injects τ), this test lets
staleness *emerge*: heterogeneous workers race each other through the
request → compute → push protocol on the event loop, so a slow device's
gradients arrive genuinely stale.  This exercises every component together:
I-Prof, the controller, AdaSGD, the device simulator and the worker runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_adasgd
from repro.data import make_mnist_like, shard_non_iid_split
from repro.devices import SimulatedDevice, get_spec
from repro.nn import build_logistic
from repro.profiler import IProf, SLO, collect_offline_dataset
from repro.server import FleetServer, TaskAssignment, Worker
from repro.simulation import EventLoop


@pytest.fixture(scope="module")
def async_deployment():
    """A server plus racing workers wired onto an event loop."""
    rng = np.random.default_rng(0)
    dataset = make_mnist_like(seed=1, train_per_class=30, test_per_class=10)
    partition = shard_non_iid_split(dataset.train_y, 6, rng)

    train_devices = [
        SimulatedDevice(get_spec(n), np.random.default_rng(10 + i))
        for i, n in enumerate(["Galaxy S6", "Nexus 5", "Pixel"])
    ]
    xs, ys = collect_offline_dataset(train_devices, slo_seconds=1.0, kind="time")
    iprof = IProf()
    iprof.pretrain_time(xs, ys)

    model = build_logistic(np.random.default_rng(2), 28 * 28, 10)
    optimizer = make_adasgd(
        model.get_parameters(), num_labels=10, learning_rate=0.1,
        initial_tau_thres=12.0,
    )
    server = FleetServer(optimizer, iprof, SLO(time_seconds=1.0))

    # Device mix: Honor 10 is ~15x faster than Xperia E3 per sample, so the
    # slow workers' results arrive several model versions late.
    names = ["Honor 10", "Honor 10", "Galaxy S7", "Galaxy S7", "Xperia E3", "Xperia E3"]
    workers = []
    for uid in range(partition.num_users):
        data_x, data_y = dataset.subset(partition.user_indices[uid])
        workers.append(Worker(
            uid, build_logistic(np.random.default_rng(3), 28 * 28, 10),
            data_x, data_y, 10,
            SimulatedDevice(get_spec(names[uid]), np.random.default_rng(20 + uid)),
            np.random.default_rng(30 + uid),
        ))

    loop = EventLoop()
    staleness_by_worker: dict[int, list[float]] = {w.worker_id: [] for w in workers}

    def start_round(worker: Worker) -> None:
        assignment = server.handle_request(worker.build_request())
        if not isinstance(assignment, TaskAssignment):
            loop.schedule(5.0, lambda w=worker: start_round(w))
            return
        result = worker.execute_assignment(assignment)

        def push(result=result, worker=worker):
            staleness_by_worker[worker.worker_id].append(
                float(server.clock - result.pull_step)
            )
            server.handle_result(result)
            worker.device.idle(2.0)
            start_round(worker)

        loop.schedule(result.computation_time_s, push)

    for worker in workers:
        loop.schedule(0.0, lambda w=worker: start_round(w))
    loop.run_until(600.0)
    return server, workers, dataset, staleness_by_worker


class TestAsyncDeployment:
    def test_model_learns(self, async_deployment):
        server, _, dataset, _ = async_deployment
        model = build_logistic(np.random.default_rng(4), 28 * 28, 10)
        model.set_parameters(server.current_parameters())
        assert model.evaluate_accuracy(dataset.test_x, dataset.test_y) > 0.3

    def test_staleness_emerges_from_heterogeneity(self, async_deployment):
        """Slow devices must observe more staleness than fast ones."""
        _, workers, _, staleness = async_deployment
        fast = np.mean(staleness[0] + staleness[1])      # Honor 10 workers
        slow = np.mean(staleness[4] + staleness[5])      # Xperia E3 workers
        assert slow > fast

    def test_slow_workers_not_starved(self, async_deployment):
        """Asynchrony must let every worker contribute (the Online FL point:
        no result is discarded)."""
        server, _, _, staleness = async_deployment
        assert all(len(v) > 0 for v in staleness.values())
        worker_ids = {rec.worker_id for rec in server.optimizer.applied}
        assert len(worker_ids) == 6

    def test_clock_counts_updates(self, async_deployment):
        server, _, _, staleness = async_deployment
        total_pushes = sum(len(v) for v in staleness.values())
        # K = 1: every accepted push advances the clock (minus drop-weight 0).
        assert server.clock + server.optimizer.rejected_count == total_pushes

    def test_profiler_learned_all_device_models(self, async_deployment):
        server, workers, _, _ = async_deployment
        models = {w.device.spec.name for w in workers}
        for name in models:
            assert server.profiler.time_predictor.has_personal_model(name)
