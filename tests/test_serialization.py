"""Tests for model checkpointing (nn.serialization) and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.models import Sequential, build_logistic
from repro.nn.optim import clip_by_global_norm, global_norm
from repro.nn.serialization import (
    architecture_fingerprint,
    load_into_model,
    load_parameters,
    save_model,
)


def _mlp(rng, hidden=8):
    return Sequential([
        Flatten(),
        Dense(12, hidden, rng=rng),
        ReLU(),
        Dense(hidden, 4, rng=rng),
    ])


class TestFingerprint:
    def test_same_architecture_same_fingerprint(self, rng):
        a = _mlp(np.random.default_rng(1))
        b = _mlp(np.random.default_rng(2))  # different weights, same shapes
        assert architecture_fingerprint(a) == architecture_fingerprint(b)

    def test_different_architecture_differs(self, rng):
        assert architecture_fingerprint(_mlp(rng, hidden=8)) != architecture_fingerprint(
            _mlp(rng, hidden=9)
        )

    def test_fingerprint_is_short_hex(self, rng):
        fingerprint = architecture_fingerprint(_mlp(rng))
        assert len(fingerprint) == 16
        int(fingerprint, 16)  # parses as hex


class TestSaveLoad:
    def test_round_trip_exact(self, rng, tmp_path):
        model = _mlp(rng)
        path = tmp_path / "ckpt.npz"
        save_model(model, path, step=42)
        parameters, fingerprint, step = load_parameters(path)
        assert step == 42
        assert fingerprint == architecture_fingerprint(model)
        np.testing.assert_array_equal(parameters, model.get_parameters())

    def test_load_into_model_restores_behaviour(self, rng, tmp_path):
        model = _mlp(rng)
        x = rng.normal(size=(5, 12))
        expected = model.forward(x)
        path = tmp_path / "ckpt.npz"
        save_model(model, path, step=7)

        fresh = _mlp(np.random.default_rng(99))
        assert not np.allclose(fresh.forward(x), expected)
        step = load_into_model(fresh, path)
        assert step == 7
        np.testing.assert_allclose(fresh.forward(x), expected)

    def test_fingerprint_mismatch_refused(self, rng, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_model(_mlp(rng, hidden=8), path)
        # Same total parameter count is NOT enough: shapes must match.
        other = _mlp(np.random.default_rng(0), hidden=9)
        with pytest.raises(ValueError, match="fingerprint"):
            load_into_model(other, path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_parameters(tmp_path / "nothing.npz")

    def test_suffixless_path_accepted(self, rng, tmp_path):
        """np.savez appends .npz; loading by the original name must work."""
        model = build_logistic(rng, in_features=12, num_classes=3)
        base = tmp_path / "checkpoint"
        save_model(model, base.with_suffix(".npz"))
        parameters, _, _ = load_parameters(base)
        assert parameters.size == model.num_parameters

    def test_negative_step_rejected(self, rng, tmp_path):
        with pytest.raises(ValueError):
            save_model(_mlp(rng), tmp_path / "x.npz", step=-1)


class TestClipping:
    def test_within_bound_returned_unchanged(self):
        vector = np.array([0.3, 0.4])  # norm 0.5
        assert clip_by_global_norm(vector, 1.0) is vector

    def test_clipped_to_exact_norm(self):
        vector = np.array([3.0, 4.0])  # norm 5
        clipped = clip_by_global_norm(vector, 1.0)
        assert global_norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        np.testing.assert_allclose(clipped / global_norm(clipped), vector / 5.0)

    def test_zero_vector_untouched(self):
        vector = np.zeros(4)
        assert clip_by_global_norm(vector, 0.5) is vector

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_by_global_norm(np.ones(2), 0.0)
