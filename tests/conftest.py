"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_images import make_image_dataset
from repro.devices import SimulatedDevice, get_spec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset():
    """A fast 6-class dataset for convergence smoke tests."""
    return make_image_dataset(
        num_classes=6,
        channels=1,
        side=12,
        train_per_class=30,
        test_per_class=10,
        seed=7,
        name="tiny",
    )


@pytest.fixture
def galaxy_s7(rng) -> SimulatedDevice:
    return SimulatedDevice(get_spec("Galaxy S7"), rng)
