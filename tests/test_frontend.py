# repro: wall-clock
"""Frontend edge cases: torn frames, windows, drain, slow readers.

The deterministic tests drive :meth:`_Connection.dispatch` directly with
fabricated frames (no sockets, no TCP segmentation nondeterminism); the
socket tests run a real :class:`DeviceFrontend` on loopback inside
``asyncio.run``. Together they cover the behaviours docs/protocol.md
declares normative: handshake refusal (§4), per-connection windows and
OVERLOADED (§7.1), slow-reader pausing (§7.2), torn disconnects with
zero acked loss (§7.3), and graceful drain (§8).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import make_fedavg
from repro.devices.device import DeviceFeatures
from repro.frontend import framing
from repro.frontend.framing import (
    ErrorCode,
    FrameDecoder,
    FrameType,
    GoodbyeReason,
    Hello,
    OverloadScope,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.frontend.harness import run_loopback
from repro.frontend.loadgen import DeviceClient, LoadGenConfig
from repro.frontend.server import DeviceFrontend, FrontendConfig
from repro.gateway import Gateway, GatewayConfig
from repro.profiler import IProf, SLO
from repro.server import FleetServer, VectorCodec
from repro.server.protocol import RejectionReason, TaskRequest, TaskResult
from repro.server.sparsification import ErrorFeedbackCompressor

DIM = 32
NUM_LABELS = 4


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _request(worker_id: int = 0) -> TaskRequest:
    return TaskRequest(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        label_counts=np.ones(NUM_LABELS),
    )


def _result(worker_id: int = 0, gradient: np.ndarray | None = None) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=0,
        gradient=gradient if gradient is not None else np.ones(DIM) * 0.1,
        label_counts=np.ones(NUM_LABELS),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _gateway(**config_kwargs) -> Gateway:
    config_kwargs.setdefault("batch_size", 1)
    config_kwargs.setdefault("batch_deadline_s", 1e9)
    config_kwargs.setdefault("sync_every_s", 1e9)
    return Gateway.from_factory(
        2,
        lambda i: FleetServer(
            make_fedavg(np.zeros(DIM), learning_rate=0.1),
            IProf(),
            SLO(time_seconds=3.0),
        ),
        GatewayConfig(**config_kwargs),
    )


CODEC = VectorCodec(precision="f32", compression_level=0)


def _hello_frame(
    worker_id: int = 0, version: int = PROTOCOL_VERSION, max_inflight: int = 0
) -> bytes:
    return framing.pack_hello(
        Hello(
            worker_id=worker_id,
            device_model="Galaxy S7",
            version=version,
            max_inflight=max_inflight,
        )
    )


def _result_frame(seq: int, **kwargs) -> bytes:
    return framing.pack_result(seq, _result(**kwargs), CODEC)


class _StubWriter:
    """Captures writes; ``drain`` optionally blocks on an event (the
    deterministic stand-in for a slow device's full socket buffer)."""

    def __init__(self, gate: asyncio.Event | None = None) -> None:
        self.sent = bytearray()
        self.gate = gate
        self.drains = 0
        self._closed = False

    def write(self, data: bytes) -> None:
        self.sent.extend(data)

    async def drain(self) -> None:
        self.drains += 1
        if self.gate is not None:
            await self.gate.wait()

    def close(self) -> None:
        self._closed = True

    async def wait_closed(self) -> None:
        return None

    def is_closing(self) -> bool:
        return self._closed

    def frames(self) -> list[tuple[int, int, bytes]]:
        out = FrameDecoder().feed(bytes(self.sent))
        self.sent.clear()
        return out


def _conn(frontend: DeviceFrontend, handshake: bool = True):
    """A test connection with a capturing stub writer, optionally past
    the handshake already."""
    conn = frontend.connection_for_test()
    stub = _StubWriter()
    conn.writer = stub
    if handshake:
        assert _dispatch_all(conn, _hello_frame()) is True
        (ftype, _flags, _body) = stub.frames()[0]
        assert ftype == FrameType.WELCOME
    return conn, stub


def _dispatch_all(conn, data: bytes) -> bool:
    """Feed whole frames through the connection's decoder and dispatch."""
    alive = True
    for ftype, _flags, body in conn.decoder.feed(data):
        alive = conn.dispatch(ftype, body)
        if not alive:
            break
    return alive


# ---------------------------------------------------------------------------
# Torn / partial framing (docs/protocol.md §3.1, §7.3)
# ---------------------------------------------------------------------------
class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        wire = _hello_frame() + framing.pack_result_ack(7, True)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames.extend(decoder.feed(wire[i : i + 1]))
        assert [f[0] for f in frames] == [FrameType.HELLO, FrameType.RESULT_ACK]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        wire = b"".join(framing.pack_result_ack(i, False) for i in range(5))
        frames = FrameDecoder().feed(wire)
        assert [framing.unpack_result_ack(b).seq for _, _, b in frames] == list(range(5))

    def test_partial_frame_stays_pending(self):
        wire = _result_frame(1)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-3]) == []
        assert decoder.pending_bytes == len(wire) - 3
        frames = decoder.feed(wire[-3:])
        assert len(frames) == 1 and decoder.pending_bytes == 0

    def test_header_split_across_chunks(self):
        wire = framing.pack_goodbye(GoodbyeReason.CLIENT_DONE)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:5]) == []  # not even a full header yet
        assert decoder.pending_bytes == 5
        assert len(decoder.feed(wire[5:])) == 1

    def test_oversized_frame_is_a_protocol_error(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        huge = framing.FRAME_HEADER.pack(65, FrameType.RESULT, 0, 0)
        with pytest.raises(ProtocolError) as excinfo:
            decoder.feed(huge)
        assert excinfo.value.code == ErrorCode.FRAME_TOO_LARGE

    def test_nonzero_reserved_is_a_protocol_error(self):
        bad = framing.FRAME_HEADER.pack(0, FrameType.GOODBYE, 0, 1)
        with pytest.raises(ProtocolError) as excinfo:
            FrameDecoder().feed(bad)
        assert excinfo.value.code == ErrorCode.MALFORMED_FRAME


class TestFrameRoundtrips:
    def test_result_roundtrip_dense(self):
        original = _result(gradient=np.linspace(-1.0, 1.0, DIM))
        seq, decoded = framing.unpack_result(
            _result_frame(3, gradient=original.gradient)[8:],
            original.worker_id,
            original.device_model,
            CODEC,
        )
        assert seq == 3
        np.testing.assert_allclose(decoded.gradient, original.gradient, atol=1e-6)
        np.testing.assert_allclose(decoded.label_counts, original.label_counts)
        assert decoded.features == original.features

    def test_result_roundtrip_sparse(self):
        compressor = ErrorFeedbackCompressor(dimension=DIM, k=4)
        sparse = compressor.compress(np.linspace(-1.0, 1.0, DIM))
        frame = framing.pack_result(9, _result(gradient=sparse), CODEC)
        seq, decoded = framing.unpack_result(frame[8:], 0, "Galaxy S7", CODEC)
        assert seq == 9
        np.testing.assert_allclose(decoded.gradient.densify(), sparse.densify())

    def test_request_roundtrip(self):
        frame = framing.pack_request(5, _request(worker_id=11))
        seq, decoded = framing.unpack_request(frame[8:], 11, "Galaxy S7")
        assert seq == 5 and decoded.worker_id == 11
        np.testing.assert_allclose(decoded.label_counts, np.ones(NUM_LABELS))

    def test_error_roundtrip(self):
        frame = framing.pack_error(ErrorCode.VERSION_MISMATCH, "nope")
        decoded = framing.unpack_error(frame[8:])
        assert decoded.code == ErrorCode.VERSION_MISMATCH and decoded.detail == "nope"


# ---------------------------------------------------------------------------
# Handshake (docs/protocol.md §4)
# ---------------------------------------------------------------------------
class TestHandshake:
    def test_welcome_grants_min_of_requested_and_server_window(self):
        frontend = DeviceFrontend(
            _gateway(), FrontendConfig(max_inflight=8), clock=lambda: 0.0
        )
        conn = frontend.connection_for_test()
        stub = _StubWriter()
        conn.writer = stub
        assert _dispatch_all(conn, _hello_frame(max_inflight=3)) is True
        ftype, _, body = stub.frames()[0]
        welcome = framing.unpack_welcome(body)
        assert ftype == FrameType.WELCOME
        assert welcome.max_inflight == 3 and conn.window == 3
        assert welcome.version == PROTOCOL_VERSION

    def test_requesting_more_than_server_allows_is_clamped(self):
        frontend = DeviceFrontend(
            _gateway(), FrontendConfig(max_inflight=4), clock=lambda: 0.0
        )
        conn, stub = _conn(frontend, handshake=False)
        _dispatch_all(conn, _hello_frame(max_inflight=1000))
        assert framing.unpack_welcome(stub.frames()[0][2]).max_inflight == 4

    def test_version_mismatch_is_refused_with_error_code_2(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend, handshake=False)
        assert _dispatch_all(conn, _hello_frame(version=99)) is False
        ftype, _, body = stub.frames()[0]
        assert ftype == FrameType.ERROR
        assert framing.unpack_error(body).code == ErrorCode.VERSION_MISMATCH
        assert frontend.gateway.metrics.counter("frontend.handshake_errors").value == 1

    def test_bad_magic_is_refused(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend, handshake=False)
        body = framing.HELLO_BODY.pack(0xDEADBEEF, PROTOCOL_VERSION, 0, 0, 0)
        assert conn.dispatch(FrameType.HELLO, body) is False
        assert framing.unpack_error(stub.frames()[0][2]).code == ErrorCode.BAD_MAGIC

    def test_first_frame_must_be_hello(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend, handshake=False)
        assert _dispatch_all(conn, _result_frame(1)) is False
        assert (
            framing.unpack_error(stub.frames()[0][2]).code
            == ErrorCode.HANDSHAKE_REQUIRED
        )
        assert frontend.gateway.results_received() == 0

    def test_duplicate_hello_closes_the_connection(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        assert _dispatch_all(conn, _hello_frame()) is False
        assert (
            framing.unpack_error(stub.frames()[0][2]).code == ErrorCode.MALFORMED_FRAME
        )

    def test_unknown_frame_type_closes_the_connection(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        assert conn.dispatch(0x7F, b"") is False
        assert (
            framing.unpack_error(stub.frames()[0][2]).code
            == ErrorCode.UNKNOWN_FRAME_TYPE
        )

    def test_server_to_client_frame_from_client_is_malformed(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        assert conn.dispatch(FrameType.RESULT_ACK, b"\x00" * 5) is False
        assert (
            framing.unpack_error(stub.frames()[0][2]).code == ErrorCode.MALFORMED_FRAME
        )


# ---------------------------------------------------------------------------
# Window backpressure and typed rejections (docs/protocol.md §7.1, §6.3)
# ---------------------------------------------------------------------------
class TestWindowBackpressure:
    def test_result_past_the_window_gets_overloaded_not_gateway(self):
        frontend = DeviceFrontend(
            _gateway(), FrontendConfig(max_inflight=2), clock=lambda: 0.0
        )
        conn, stub = _conn(frontend)
        for seq in (1, 2, 3):
            assert _dispatch_all(conn, _result_frame(seq)) is True
        replies = stub.frames()
        assert [f[0] for f in replies] == [
            FrameType.RESULT_ACK,
            FrameType.RESULT_ACK,
            FrameType.OVERLOADED,
        ]
        over = framing.unpack_overloaded(replies[2][2])
        assert over.scope == OverloadScope.WINDOW and over.seq == 3
        # The refused upload never reached the gateway: nothing acked is lost.
        assert frontend.gateway.results_received() == 2
        assert frontend.gateway.metrics.counter("frontend.results_overloaded").value == 1

    def test_flush_reopens_the_window(self):
        frontend = DeviceFrontend(
            _gateway(), FrontendConfig(max_inflight=1), clock=lambda: 0.0
        )
        conn, stub = _conn(frontend)
        _dispatch_all(conn, _result_frame(1))
        _dispatch_all(conn, _result_frame(2))  # over the window
        asyncio.run(conn.flush())
        _dispatch_all(conn, _result_frame(3))  # window reopened
        kinds = [f[0] for f in stub.frames()]
        assert kinds == [FrameType.RESULT_ACK, FrameType.OVERLOADED, FrameType.RESULT_ACK]
        assert frontend.gateway.results_received() == 2

    def test_shed_request_comes_back_as_typed_rejection(self):
        gateway = _gateway(admission_rate_per_s=1.0, admission_burst=1.0)
        frontend = DeviceFrontend(gateway, clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        for seq in (1, 2, 3):
            _dispatch_all(conn, framing.pack_request(seq, _request()))
        replies = stub.frames()
        assert replies[0][0] == FrameType.ASSIGNMENT  # burst budget of 1
        for _, _, body in replies[1:]:
            rejection = framing.unpack_rejection(body)
            assert rejection.reason == RejectionReason.OVERLOADED
        assert gateway.requests_shed() == 2

    def test_assignment_carries_the_model_parameters(self):
        gateway = _gateway()
        frontend = DeviceFrontend(gateway, clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        _dispatch_all(conn, framing.pack_request(1, _request()))
        ftype, _, body = stub.frames()[0]
        assert ftype == FrameType.ASSIGNMENT
        seq, assignment = framing.unpack_assignment(body, frontend.codec)
        assert seq == 1
        np.testing.assert_allclose(assignment.parameters, np.zeros(DIM), atol=1e-6)


# ---------------------------------------------------------------------------
# Drain (docs/protocol.md §8)
# ---------------------------------------------------------------------------
class TestDrainDispatch:
    def test_draining_frontend_refuses_uploads_with_scope_3(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        frontend.draining = True
        _dispatch_all(conn, _result_frame(1))
        ftype, _, body = stub.frames()[0]
        assert ftype == FrameType.OVERLOADED
        assert framing.unpack_overloaded(body).scope == OverloadScope.DRAINING
        assert frontend.gateway.results_received() == 0

    def test_draining_frontend_refuses_requests(self):
        frontend = DeviceFrontend(_gateway(), clock=lambda: 0.0)
        conn, stub = _conn(frontend)
        frontend.draining = True
        _dispatch_all(conn, framing.pack_request(1, _request()))
        assert stub.frames()[0][0] == FrameType.OVERLOADED


# ---------------------------------------------------------------------------
# Slow readers (docs/protocol.md §7.2) — deterministic, no sockets
# ---------------------------------------------------------------------------
class TestSlowReader:
    def test_no_reads_while_writes_are_undrained(self):
        async def scenario():
            gateway = _gateway()
            frontend = DeviceFrontend(gateway, clock=lambda: 0.0)
            gate = asyncio.Event()
            conn = frontend.connection_for_test()
            stub = _StubWriter(gate=gate)
            conn.writer = stub
            conn.reader = asyncio.StreamReader()
            conn.reader.feed_data(
                _hello_frame() + _result_frame(1) + _result_frame(2)
            )
            task = asyncio.ensure_future(conn.run())
            await asyncio.sleep(0.01)
            # First chunk dispatched, connection parked in writer.drain().
            assert gateway.results_received() == 2
            conn.reader.feed_data(_result_frame(3) + _result_frame(4))
            await asyncio.sleep(0.01)
            # Still 2: a slow reader stops the server reading this socket.
            assert gateway.results_received() == 2
            gate.set()
            await asyncio.sleep(0.01)
            assert gateway.results_received() == 4
            conn.reader.feed_eof()
            await task
            assert conn.close_reason == "eof"

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Socket-level: torn disconnects, drain, zero acked loss
# ---------------------------------------------------------------------------
class TestLoopback:
    def test_version_mismatch_over_a_real_socket(self):
        async def scenario():
            frontend = DeviceFrontend(_gateway())
            host, port = await frontend.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_hello_frame(version=99))
            await writer.drain()
            reply = await reader.read(4096)
            frames = FrameDecoder().feed(reply)
            assert frames and frames[0][0] == FrameType.ERROR
            assert (
                framing.unpack_error(frames[0][2]).code == ErrorCode.VERSION_MISMATCH
            )
            assert await reader.read(4096) == b""  # server closed on us
            writer.close()
            await frontend.drain()

        asyncio.run(scenario())

    def test_mid_upload_disconnect_is_torn_and_loses_nothing_acked(self):
        async def scenario():
            gateway = _gateway()
            frontend = DeviceFrontend(gateway)
            host, port = await frontend.start()
            client = DeviceClient(0, LoadGenConfig(dimension=DIM, num_labels=NUM_LABELS),
                                  np.random.default_rng(0))
            await client.connect(host, port)
            ack = await client.send_result(wait_ack=True)
            assert ack is not None and ack.applied
            await client.abort_mid_frame()
            # Let the server observe the reset before draining; drain
            # would otherwise close the socket first and relabel the
            # disconnect as its own.
            for _ in range(200):
                if not frontend._connections:
                    break
                await asyncio.sleep(0.01)
            drain = await frontend.drain()
            metrics = gateway.metrics
            assert metrics.counter("frontend.torn_disconnects").value == 1
            # Everything acked was applied; the torn upload was never admitted.
            assert drain["results_received"] == drain["results_applied"] == 1
            assert client.stats.acked == 1
            records = [
                r for r in gateway.journal.events
                if getattr(r, "kind", "") == "frontend_connection"
            ]
            assert len(records) == 1 and records[0].close_reason == "torn"

        asyncio.run(scenario())

    def test_drain_announces_goodbye_and_reaches_equality(self):
        async def scenario():
            gateway = _gateway()
            frontend = DeviceFrontend(gateway)
            host, port = await frontend.start()
            client = DeviceClient(0, LoadGenConfig(dimension=DIM, num_labels=NUM_LABELS),
                                  np.random.default_rng(1))
            await client.connect(host, port)
            for _ in range(3):
                await client.send_result(wait_ack=True)
            drain = await frontend.drain()
            assert drain["results_received"] == drain["results_applied"] == 3
            await client.closed.wait()
            assert client.draining and client.stats.goodbyes == 1
            drains = [
                r for r in gateway.journal.events
                if getattr(r, "kind", "") == "frontend_drain"
            ]
            assert len(drains) == 1
            assert drains[0].results_received == drains[0].results_applied == 3
            await client.close(goodbye=False)
            # The listener is gone: new devices cannot connect mid-drain.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        asyncio.run(scenario())

    def test_abortive_fleet_keeps_the_zero_acked_loss_invariant(self):
        gateway = _gateway(batch_size=4)
        config = LoadGenConfig(
            devices=12,
            mode="push",
            uploads_per_device=6,
            window=4,
            dimension=DIM,
            num_labels=NUM_LABELS,
            seed=7,
        )
        report = asyncio.run(
            run_loopback(gateway, config, abort_fraction=0.25)
        )
        assert report.results_applied == report.results_received
        assert report.stats.acked <= report.results_received
        assert report.stats.acked > 0
        assert gateway.metrics.counter("frontend.connections").value == 12


# ---------------------------------------------------------------------------
# Client-side error feedback (docs/protocol.md §7.3)
# ---------------------------------------------------------------------------
class TestErrorFeedbackRestore:
    def test_disconnect_restores_unacked_payload_into_residual(self):
        async def scenario():
            config = LoadGenConfig(dimension=DIM, sparse_k=4, num_labels=NUM_LABELS)
            client = DeviceClient(0, config, np.random.default_rng(2))
            gradient = np.linspace(-1.0, 1.0, DIM)
            payload = client.compressor.compress(gradient)
            # Ship-and-lose: register the payload as unacked, then fail.
            client._unacked_payloads[1] = payload
            client._pending[1] = asyncio.get_running_loop().create_future()
            client._fail_pending("socket died")
            # The residual is whole again: compensation equals the full
            # gradient, as if the upload had never been attempted.
            np.testing.assert_allclose(client.compressor.residual, gradient)
            assert client.stats.restored_payloads == 1

        asyncio.run(scenario())

    def test_overloaded_reply_restores_the_payload(self):
        async def scenario():
            config = LoadGenConfig(dimension=DIM, sparse_k=4, num_labels=NUM_LABELS)
            client = DeviceClient(0, config, np.random.default_rng(3))
            client._window = asyncio.Semaphore(1)
            gradient = np.linspace(0.0, 2.0, DIM)
            payload = client.compressor.compress(gradient)
            client._unacked_payloads[5] = payload
            client._on_frame(
                FrameType.OVERLOADED,
                framing.pack_overloaded(5, OverloadScope.WINDOW, 0.05)[8:],
            )
            np.testing.assert_allclose(client.compressor.residual, gradient)
            assert client.stats.overloaded == 1
            assert client.stats.restored_payloads == 1

        asyncio.run(scenario())
