"""Tests for the §2.4 A/B threshold-tuning procedure (server.ab_testing)."""

from __future__ import annotations

import pytest

from repro.server.ab_testing import ABGroup, ABThresholdTuner


class TestGroupAssignment:
    def test_deterministic(self):
        tuner = ABThresholdTuner()
        for user in range(50):
            assert tuner.group_of(user) is tuner.group_of(user)

    def test_roughly_balanced(self):
        tuner = ABThresholdTuner()
        groups = [tuner.group_of(user) for user in range(1000)]
        size_share = sum(1 for g in groups if g is ABGroup.SIZE) / len(groups)
        assert 0.35 <= size_share <= 0.65


class TestEpochAdvance:
    def test_first_epoch_sets_baseline_without_moving(self):
        tuner = ABThresholdTuner(size_step=5.0, similarity_step=0.05)
        snapshot = tuner.advance_epoch(0.8, 0.8)
        assert snapshot.size_threshold == 0.0
        assert snapshot.similarity_threshold == 1.0
        assert not snapshot.size_frozen and not snapshot.similarity_frozen

    def test_thresholds_tighten_while_quality_holds(self):
        tuner = ABThresholdTuner(size_step=5.0, similarity_step=0.05)
        tuner.advance_epoch(0.8, 0.8)
        snapshot = tuner.advance_epoch(0.8, 0.8)
        assert snapshot.size_threshold == 5.0
        assert snapshot.similarity_threshold == pytest.approx(0.95)
        snapshot = tuner.advance_epoch(0.79, 0.79)  # within tolerance
        assert snapshot.size_threshold == 10.0
        assert snapshot.similarity_threshold == pytest.approx(0.90)

    def test_quality_drop_freezes_and_rolls_back_size(self):
        tuner = ABThresholdTuner(size_step=5.0, max_quality_drop=0.02)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.8, 0.8)  # size: 5
        snapshot = tuner.advance_epoch(0.7, 0.8)  # size group tanked
        assert snapshot.size_frozen
        assert snapshot.size_threshold == 0.0  # rolled back one step
        assert not snapshot.similarity_frozen

    def test_quality_drop_freezes_and_rolls_back_similarity(self):
        tuner = ABThresholdTuner(similarity_step=0.05, max_quality_drop=0.02)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.8, 0.8)  # similarity: 0.95
        snapshot = tuner.advance_epoch(0.8, 0.7)
        assert snapshot.similarity_frozen
        assert snapshot.similarity_threshold == pytest.approx(1.0)
        assert not snapshot.size_frozen

    def test_frozen_thresholds_stop_moving(self):
        tuner = ABThresholdTuner(size_step=5.0)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.5, 0.5)  # both freeze
        frozen = tuner.advance_epoch(0.9, 0.9)
        assert frozen.size_threshold == tuner.history[-2].size_threshold
        assert frozen.similarity_threshold == pytest.approx(
            tuner.history[-2].similarity_threshold
        )
        assert tuner.converged

    def test_similarity_threshold_floor_zero(self):
        tuner = ABThresholdTuner(similarity_step=0.5)
        tuner.advance_epoch(0.8, 0.8)
        for _ in range(5):
            snapshot = tuner.advance_epoch(0.8, 0.8)
        assert snapshot.similarity_threshold == 0.0

    def test_periodic_reset(self):
        tuner = ABThresholdTuner(size_step=5.0, reset_every_epochs=3)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.8, 0.8)
        assert tuner.size_threshold == 5.0
        snapshot = tuner.advance_epoch(0.8, 0.8)  # epoch 3 → reset
        assert snapshot.size_threshold == 0.0
        assert snapshot.similarity_threshold == 1.0
        assert not tuner.converged

    def test_non_finite_quality_rejected(self):
        tuner = ABThresholdTuner()
        with pytest.raises(ValueError):
            tuner.advance_epoch(float("nan"), 0.5)
        with pytest.raises(ValueError):
            tuner.advance_epoch(0.5, float("inf"))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            ABThresholdTuner(size_step=0.0)
        with pytest.raises(ValueError):
            ABThresholdTuner(similarity_step=-1.0)
        with pytest.raises(ValueError):
            ABThresholdTuner(max_quality_drop=-0.01)
        with pytest.raises(ValueError):
            ABThresholdTuner(reset_every_epochs=0)

    def test_history_records_every_epoch(self):
        tuner = ABThresholdTuner()
        for _ in range(4):
            tuner.advance_epoch(0.8, 0.8)
        assert [snap.epoch for snap in tuner.history] == [1, 2, 3, 4]


class TestControllerWiring:
    def test_size_group_controller_enforces_size_only(self):
        tuner = ABThresholdTuner(size_step=10.0)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.8, 0.8)  # size threshold: 10
        controller = tuner.controller_for(ABGroup.SIZE)
        assert not controller.check(batch_size=5, similarity=1.0).accepted
        assert controller.check(batch_size=50, similarity=1.0).accepted

    def test_similarity_group_controller_enforces_similarity_only(self):
        tuner = ABThresholdTuner(similarity_step=0.2)
        tuner.advance_epoch(0.8, 0.8)
        tuner.advance_epoch(0.8, 0.8)  # similarity threshold: 0.8
        controller = tuner.controller_for(ABGroup.SIMILARITY)
        assert not controller.check(batch_size=1, similarity=0.95).accepted
        assert controller.check(batch_size=1, similarity=0.5).accepted

    def test_neutral_thresholds_admit_everything(self):
        tuner = ABThresholdTuner()
        for group in ABGroup:
            controller = tuner.controller_for(group)
            assert controller.check(batch_size=1, similarity=1.0).accepted
