"""Tests for the bench-diff regression gate over BENCH_*.json artifacts.

Covers: metric classification by name, extraction from both artifact
shapes (flat dicts and pytest-benchmark JSON), threshold gating in both
directions, the EWMA baseline fold, the history JSONL trail, and the
CLI's exit codes on clean vs degraded artifacts.
"""

from __future__ import annotations

import json

from repro.observability.benchdiff import (
    TAIL_LATENCY_RISE_THRESHOLD,
    THROUGHPUT_DROP_THRESHOLD,
    classify_metric,
    diff_metrics,
    extract_metrics,
    load_baseline,
    main,
    update_baseline,
)


def _write(path, document) -> str:
    path.write_text(json.dumps(document))
    return str(path)


class TestClassification:
    def test_throughput_like_names_gate_higher(self):
        for name in (
            "failover.pre_throughput_uploads_s",
            "hotpath.results_per_s",
            "wal_relative_throughput",
            "tuning.accuracy",
        ):
            assert classify_metric(name) == "higher"

    def test_tail_latency_names_gate_lower(self):
        for name in (
            "routing.p95_staleness",
            "failover.recovery_virtual_s",
            "gateway.upload_latency_mean",
        ):
            assert classify_metric(name) == "lower"

    def test_unrecognized_names_are_informational(self):
        assert classify_metric("failover.acked_received") == "info"
        assert classify_metric("some.new_metric") == "info"


class TestExtraction:
    def test_flat_artifact_skips_non_scalars(self):
        metrics = extract_metrics(
            {
                "pre_throughput_uploads_s": 120.5,
                "smoke": True,  # bool is not a metric
                "label": "full",  # nor a string
                "samples": [1.0, 2.0],  # nor a raw sample list
                "broken": float("nan"),  # nor a non-finite value
            },
            prefix="failover.",
        )
        assert metrics == {"failover.pre_throughput_uploads_s": 120.5}

    def test_pytest_benchmark_artifact(self):
        artifact = {
            "benchmarks": [
                {
                    "fullname": "benchmarks/test_x.py::test_fold",
                    "stats": {"mean": 0.012, "median": 0.011, "stddev": 0.001},
                }
            ]
        }
        metrics = extract_metrics(artifact, prefix="nightly.")
        assert metrics == {
            "nightly.test_fold.mean_s": 0.012,
            "nightly.test_fold.median_s": 0.011,
        }


class TestDiffing:
    def test_throughput_drop_past_threshold_regresses(self):
        baseline = {"a.throughput": 100.0}
        ok = diff_metrics(baseline, {"a.throughput": 91.0})[0]
        bad = diff_metrics(baseline, {"a.throughput": 89.0})[0]
        assert not ok.regressed
        assert bad.regressed
        assert bad.change < -THROUGHPUT_DROP_THRESHOLD

    def test_latency_rise_past_threshold_regresses(self):
        baseline = {"a.p95_latency": 1.0}
        ok = diff_metrics(baseline, {"a.p95_latency": 1.14})[0]
        bad = diff_metrics(baseline, {"a.p95_latency": 1.16})[0]
        assert not ok.regressed
        assert bad.regressed
        assert bad.change > TAIL_LATENCY_RISE_THRESHOLD

    def test_throughput_rise_and_latency_drop_never_regress(self):
        baseline = {"a.throughput": 100.0, "a.p95_latency": 1.0}
        diffs = diff_metrics(
            baseline, {"a.throughput": 200.0, "a.p95_latency": 0.1}
        )
        assert not any(d.regressed for d in diffs)

    def test_info_metrics_never_gate(self):
        baseline = {"a.acked_received": 100.0}
        diff = diff_metrics(baseline, {"a.acked_received": 1.0})[0]
        assert diff.direction == "info"
        assert not diff.regressed

    def test_new_metric_is_reported_not_gated(self):
        diff = diff_metrics({}, {"a.throughput": 10.0})[0]
        assert diff.baseline is None
        assert not diff.regressed
        assert "(new)" in diff.describe()


class TestBaseline:
    def test_absent_file_is_empty_baseline(self, tmp_path):
        baseline = load_baseline(str(tmp_path / "missing.json"))
        assert baseline == {"metrics": {}, "runs_folded": 0}

    def test_ewma_fold(self):
        baseline = {"metrics": {"a.throughput": 100.0}, "runs_folded": 3}
        updated = update_baseline(
            baseline, {"a.throughput": 200.0, "b.throughput": 50.0}
        )
        # Existing metric moves alpha=0.3 of the way; new one enters as-is.
        assert updated["metrics"]["a.throughput"] == 130.0
        assert updated["metrics"]["b.throughput"] == 50.0
        assert updated["runs_folded"] == 4


class TestCLI:
    def _seed_baseline(self, tmp_path) -> str:
        artifact = _write(
            tmp_path / "BENCH_run.json",
            {"pre_throughput_uploads_s": 100.0, "p95_latency_s": 1.0},
        )
        baseline = str(tmp_path / "baseline.json")
        assert main([artifact, "--baseline", baseline, "--update-baseline"]) == 0
        return baseline

    def test_identical_rerun_exits_zero(self, tmp_path):
        baseline = self._seed_baseline(tmp_path)
        artifact = str(tmp_path / "BENCH_run.json")
        assert main([artifact, "--baseline", baseline]) == 0

    def test_degraded_artifact_exits_nonzero(self, tmp_path):
        baseline = self._seed_baseline(tmp_path)
        # Same artifact NAME (the filename stem prefixes every metric, so
        # a renamed artifact would read as all-new metrics and not gate).
        degraded = _write(
            tmp_path / "BENCH_run.json",
            {"pre_throughput_uploads_s": 70.0, "p95_latency_s": 1.0},
        )
        assert main([degraded, "--baseline", baseline]) == 1

    def test_latency_regression_also_gates(self, tmp_path):
        baseline = self._seed_baseline(tmp_path)
        degraded = _write(
            tmp_path / "BENCH_run.json",
            {"pre_throughput_uploads_s": 100.0, "p95_latency_s": 1.5},
        )
        assert main([degraded, "--baseline", baseline]) == 1

    def test_history_and_summary_rows(self, tmp_path):
        baseline = self._seed_baseline(tmp_path)
        artifact = str(tmp_path / "BENCH_run.json")
        history = tmp_path / "history.jsonl"
        summary = tmp_path / "summary.md"
        for stamp in ("2026-08-07T00:00:00Z", "2026-08-08T00:00:00Z"):
            assert (
                main(
                    [
                        artifact,
                        "--baseline", baseline,
                        "--history", str(history),
                        "--summary", str(summary),
                        "--timestamp", stamp,
                    ]
                )
                == 0
            )
        rows = [
            json.loads(line) for line in history.read_text().splitlines()
        ]
        assert len(rows) == 2
        assert rows[0]["timestamp"] == "2026-08-07T00:00:00Z"
        assert rows[1]["ok"] is True
        assert rows[1]["regressions"] == []
        assert "run.pre_throughput_uploads_s" in rows[0]["metrics"]
        assert summary.read_text().count("## bench-diff") == 2

    def test_baseline_file_round_trips(self, tmp_path):
        baseline = self._seed_baseline(tmp_path)
        document = json.loads(open(baseline).read())
        assert document["runs_folded"] == 1
        assert document["metrics"]["run.pre_throughput_uploads_s"] == 100.0
