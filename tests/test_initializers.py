"""Tests for weight initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import _fans, glorot_uniform, he_normal, uniform, zeros


class TestFans:
    def test_dense_shape(self):
        assert _fans((10, 20)) == (10, 20)

    def test_conv_shape(self):
        # (out_channels, in_channels, kh, kw)
        fan_in, fan_out = _fans((8, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 8 * 25

    def test_other_shape(self):
        fan_in, fan_out = _fans((7,))
        assert fan_in == fan_out == 7


class TestDistributions:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit
        assert w.shape == (100, 100)

    def test_he_scale(self):
        rng = np.random.default_rng(1)
        w = he_normal((400, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_zeros(self):
        assert not zeros((3, 3)).any()

    def test_uniform_bounds(self):
        rng = np.random.default_rng(2)
        w = uniform((50, 50), rng, low=-0.1, high=0.1)
        assert w.min() >= -0.1
        assert w.max() <= 0.1

    def test_determinism(self):
        a = glorot_uniform((5, 5), np.random.default_rng(3))
        b = glorot_uniform((5, 5), np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_dtype(self):
        rng = np.random.default_rng(4)
        for init in (glorot_uniform, he_normal):
            assert init((4, 4), rng).dtype == np.float64
