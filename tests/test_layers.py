"""Unit tests for the nn layers: shapes, semantics and analytic gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    GlobalAveragePool1D,
    MaxPool2D,
    ReLU,
    Softmax,
    Tanh,
    col2im,
    im2col,
)

RNG = np.random.default_rng(0)


def _layer_gradcheck(layer, x, tol=1e-6, param_checks=True):
    """Check input and parameter gradients against finite differences."""
    out = layer.forward(x.copy(), train=False)
    upstream = np.random.default_rng(1).normal(size=out.shape)

    def loss_of_input(x_in):
        return float((layer.forward(x_in, train=False) * upstream).sum())

    layer.zero_grad()
    layer.forward(x.copy(), train=False)
    grad_in = layer.backward(upstream)
    numeric = numerical_gradient(loss_of_input, x.copy())
    assert max_relative_error(grad_in, numeric) < tol

    if not param_checks:
        return
    for key in layer.params:
        def loss_of_param(p, key=key):
            original = layer.params[key]
            layer.params[key] = p
            value = float((layer.forward(x.copy(), train=False) * upstream).sum())
            layer.params[key] = original
            return value

        numeric_p = numerical_gradient(loss_of_param, layer.params[key].copy())
        assert max_relative_error(layer.grads[key], numeric_p) < tol, key


class TestDense:
    def test_output_shape(self):
        layer = Dense(8, 3, RNG)
        out = layer.forward(np.ones((5, 8)))
        assert out.shape == (5, 3)

    def test_gradients(self):
        layer = Dense(6, 4, np.random.default_rng(2))
        _layer_gradcheck(layer, np.random.default_rng(3).normal(size=(3, 6)))

    def test_grad_accumulates_until_zeroed(self):
        layer = Dense(4, 2, np.random.default_rng(2))
        x = np.ones((2, 4))
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        first = layer.grads["W"].copy()
        layer.forward(x)
        layer.backward(np.ones((2, 2)))
        assert np.allclose(layer.grads["W"], 2 * first)
        layer.zero_grad()
        assert np.allclose(layer.grads["W"], 0.0)


class TestConv2D:
    def test_output_shape(self):
        layer = Conv2D(3, 8, kernel_size=3, rng=RNG)
        out = layer.forward(np.zeros((2, 3, 10, 10)))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_with_stride_and_pad(self):
        layer = Conv2D(1, 4, kernel_size=3, rng=RNG, stride=2, pad=1)
        out = layer.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 4, 5, 5)

    def test_gradients(self):
        layer = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(4))
        _layer_gradcheck(layer, np.random.default_rng(5).normal(size=(2, 2, 6, 6)))

    def test_matches_direct_convolution(self):
        layer = Conv2D(1, 1, kernel_size=2, rng=np.random.default_rng(6))
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        w = layer.params["W"][0, 0]
        b = layer.params["b"][0]
        expected = np.empty((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x[0, 0, i : i + 2, j : j + 2] * w).sum() + b
        assert np.allclose(out[0, 0], expected)


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self):
        x = np.random.default_rng(7).normal(size=(1, 1, 5, 5))
        cols, oh, ow = im2col(x, 3, 3, stride=1, pad=0)
        back = col2im(cols, x.shape, 3, 3, 1, 0, oh, ow)
        # Each pixel is counted once per patch containing it.
        counts = col2im(np.ones_like(cols), x.shape, 3, 3, 1, 0, oh, ow)
        assert np.allclose(back, x * counts)

    def test_patch_content(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols, oh, ow = im2col(x, 2, 2, stride=2, pad=0)
        assert oh == ow == 2
        assert np.allclose(cols[0], [0, 1, 4, 5])
        assert np.allclose(cols[3], [10, 11, 14, 15])


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradients(self):
        _layer_gradcheck(
            MaxPool2D(2), np.random.default_rng(8).normal(size=(2, 2, 4, 4))
        )

    def test_avgpool_gradients(self):
        _layer_gradcheck(
            AvgPool2D(2), np.random.default_rng(9).normal(size=(2, 2, 4, 4))
        )

    def test_non_square_stride(self):
        out = MaxPool2D(3, stride=3).forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 1, 3, 3)


class TestActivations:
    def test_relu_forward_and_grad(self):
        x = np.array([[-1.0, 0.5], [2.0, -3.0]])
        layer = ReLU()
        out = layer.forward(x)
        assert np.allclose(out, [[0, 0.5], [2, 0]])
        grad = layer.backward(np.ones_like(x))
        assert np.allclose(grad, [[0, 1], [1, 0]])

    def test_tanh_gradients(self):
        _layer_gradcheck(Tanh(), np.random.default_rng(10).normal(size=(3, 5)))

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(np.random.default_rng(11).normal(size=(4, 7)))
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    def test_softmax_gradients(self):
        _layer_gradcheck(Softmax(), np.random.default_rng(12).normal(size=(3, 4)))


class TestFlattenDropoutEmbedding:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(13).normal(size=(2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_off_at_inference(self):
        layer = Dropout(0.5, np.random.default_rng(14))
        x = np.ones((4, 4))
        assert np.allclose(layer.forward(x, train=False), x)

    def test_dropout_preserves_expectation(self):
        layer = Dropout(0.3, np.random.default_rng(15))
        x = np.ones((200, 200))
        out = layer.forward(x, train=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, RNG)

    def test_embedding_lookup(self):
        layer = Embedding(10, 4, np.random.default_rng(16))
        idx = np.array([[1, 2], [3, 1]])
        out = layer.forward(idx)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], layer.params["W"][1])
        assert np.allclose(out[1, 1], layer.params["W"][1])

    def test_embedding_gradient_scatter(self):
        layer = Embedding(5, 2, np.random.default_rng(17))
        idx = np.array([[0, 0]])
        layer.forward(idx)
        layer.backward(np.ones((1, 2, 2)))
        # Token 0 used twice: gradient accumulates.
        assert np.allclose(layer.grads["W"][0], [2.0, 2.0])
        assert np.allclose(layer.grads["W"][1:], 0.0)

    def test_embedding_out_of_range(self):
        layer = Embedding(5, 2, RNG)
        with pytest.raises(ValueError):
            layer.forward(np.array([[7]]))

    def test_global_average_pool(self):
        layer = GlobalAveragePool1D()
        x = np.random.default_rng(18).normal(size=(2, 4, 3))
        out = layer.forward(x)
        assert np.allclose(out, x.mean(axis=1))
        grad = layer.backward(np.ones((2, 3)))
        assert np.allclose(grad, 0.25)
