"""Tests for the model zoo: Table-1 architectures and the flat-vector API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_model_gradients
from repro.nn.models import (
    build_cifar100_cnn,
    build_emnist_cnn,
    build_hashtag_gru,
    build_hashtag_rnn,
    build_logistic,
    build_mnist_cnn,
)


class TestTable1Architectures:
    """Input/output contracts of the three paper CNNs (Table 1)."""

    def test_mnist_cnn_shapes(self):
        model = build_mnist_cnn(np.random.default_rng(0))
        out = model.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_emnist_cnn_shapes(self):
        model = build_emnist_cnn(np.random.default_rng(0))
        out = model.forward(np.zeros((2, 1, 28, 28)))
        assert out.shape == (2, 62)

    def test_cifar100_cnn_shapes(self):
        model = build_cifar100_cnn(np.random.default_rng(0))
        out = model.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 100)

    def test_scale_shrinks_parameters(self):
        full = build_mnist_cnn(np.random.default_rng(0))
        half = build_mnist_cnn(np.random.default_rng(0), scale=0.5)
        assert half.num_parameters < full.num_parameters
        assert half.forward(np.zeros((1, 1, 28, 28))).shape == (1, 10)

    def test_hashtag_rnn_parameter_count_matches_paper(self):
        model = build_hashtag_rnn(np.random.default_rng(0))
        # Paper: 123,330 parameters; our default config gives 123,648.
        assert abs(model.num_parameters - 123_330) < 1000

    def test_hashtag_rnn_forward(self):
        model = build_hashtag_rnn(
            np.random.default_rng(0), vocab_size=50, embed_dim=8,
            hidden_dim=12, num_hashtags=20,
        )
        out = model.forward(np.random.default_rng(1).integers(0, 50, size=(3, 6)))
        assert out.shape == (3, 20)


class TestFlatVectorInterface:
    def test_roundtrip(self):
        model = build_logistic(np.random.default_rng(0), 10, 4)
        vec = model.get_parameters()
        model.set_parameters(np.zeros_like(vec))
        assert np.allclose(model.get_parameters(), 0.0)
        model.set_parameters(vec)
        assert np.allclose(model.get_parameters(), vec)

    def test_wrong_size_rejected(self):
        model = build_logistic(np.random.default_rng(0), 10, 4)
        with pytest.raises(ValueError):
            model.set_parameters(np.zeros(3))

    def test_set_parameters_changes_predictions(self):
        rng = np.random.default_rng(1)
        model = build_logistic(rng, 6, 3)
        x = rng.normal(size=(4, 6))
        before = model.forward(x)
        model.set_parameters(rng.normal(size=model.num_parameters))
        after = model.forward(x)
        assert not np.allclose(before, after)

    def test_gradient_vector_matches_parameter_layout(self):
        rng = np.random.default_rng(2)
        model = build_logistic(rng, 5, 3)
        x, y = rng.normal(size=(4, 5)), rng.integers(0, 3, size=4)
        _, grad = model.compute_gradient(x, y)
        assert grad.shape == model.get_parameters().shape

    def test_parameter_vector_is_copy(self):
        model = build_logistic(np.random.default_rng(0), 4, 2)
        vec = model.get_parameters()
        vec[...] = 99.0
        assert not np.allclose(model.get_parameters(), 99.0)


class TestTraining:
    def test_gradient_descent_reduces_loss(self):
        rng = np.random.default_rng(3)
        model = build_logistic(rng, 8, 3)
        x, y = rng.normal(size=(32, 8)), rng.integers(0, 3, size=32)
        loss0, grad = model.compute_gradient(x, y)
        params = model.get_parameters() - 1.0 * grad
        model.set_parameters(params)
        loss1, _ = model.compute_gradient(x, y)
        assert loss1 < loss0

    def test_cnn_gradients_correct(self):
        rng = np.random.default_rng(4)
        model = build_mnist_cnn(rng, scale=0.4)
        x = rng.normal(size=(2, 1, 28, 28))
        y = rng.integers(0, 10, size=2)
        err = check_model_gradients(model, x, y, sample=25, rng=rng)
        assert err < 1e-5

    def test_rnn_model_gradients_correct(self):
        rng = np.random.default_rng(5)
        model = build_hashtag_rnn(
            rng, vocab_size=20, embed_dim=4, hidden_dim=5, num_hashtags=6
        )
        x = rng.integers(0, 20, size=(3, 4))
        y = (rng.random((3, 6)) < 0.3).astype(float)
        err = check_model_gradients(model, x, y, sample=25, rng=rng)
        assert err < 1e-5

    def test_evaluate_accuracy_bounds(self):
        rng = np.random.default_rng(6)
        model = build_logistic(rng, 4, 2)
        x, y = rng.normal(size=(20, 4)), rng.integers(0, 2, size=20)
        acc = model.evaluate_accuracy(x, y)
        assert 0.0 <= acc <= 1.0

    def test_predict_proba_normalized(self):
        rng = np.random.default_rng(7)
        model = build_logistic(rng, 4, 3)
        probs = model.predict_proba(rng.normal(size=(5, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestHashtagGRU:
    def test_parameter_count_near_vanilla(self):
        rng = np.random.default_rng(0)
        vanilla = build_hashtag_rnn(np.random.default_rng(0))
        gated = build_hashtag_gru(rng)
        # Same order of magnitude as the paper's 123,330-parameter model.
        assert 0.7 * vanilla.num_parameters < gated.num_parameters < 1.5 * vanilla.num_parameters

    def test_forward_shape(self):
        rng = np.random.default_rng(1)
        model = build_hashtag_gru(rng, vocab_size=50, embed_dim=8,
                                  hidden_dim=12, num_hashtags=20)
        tokens = np.random.default_rng(2).integers(0, 50, size=(4, 9))
        assert model.forward(tokens).shape == (4, 20)

    def test_trains_on_toy_multilabel_task(self):
        rng = np.random.default_rng(3)
        model = build_hashtag_gru(rng, vocab_size=12, embed_dim=6,
                                  hidden_dim=8, num_hashtags=4)
        data_rng = np.random.default_rng(4)
        # Hashtag h co-occurs with token h deterministically.
        tokens = data_rng.integers(0, 4, size=(64, 5))
        labels = np.zeros((64, 4))
        labels[np.arange(64), tokens[:, 0]] = 1.0
        params = model.get_parameters()
        first_loss = None
        for _ in range(60):
            model.set_parameters(params)
            loss, grad = model.compute_gradient(tokens, labels)
            if first_loss is None:
                first_loss = loss
            params = params - 0.5 * grad
        assert loss < first_loss * 0.8
