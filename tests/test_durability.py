"""Tests for the durability subsystem: WAL, checkpoints, restore, failover.

The property suite pins the core guarantee — crash at a random applied
index, restore from checkpoint + WAL replay, and the restored shard is
*bit-identical* to an uninterrupted run — across all four aggregation
presets, both vectorized backends, and an aggregation-window variant.
The oracle harness mirrors ``tests/test_vectorized_equivalence.py``
(local copies: tests/ has no ``__init__``).
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.core import make_adasgd, make_dynsgd, make_fedavg, make_ssgd
from repro.core.adasgd import GradientUpdate
from repro.devices.device import DeviceFeatures
from repro.durability import (
    CheckpointStore,
    DurabilityManager,
    DurabilitySpec,
    FailureDetector,
    WriteAheadLog,
    checkpoint_summary,
    read_records,
    replay,
    restore_shard,
    snapshot_state,
    wal_summary,
)
from repro.gateway import Gateway, GatewayConfig
from repro.observability.journal import EventJournal, load_jsonl
from repro.profiler import IProf, SLO
from repro.server import FleetServer
from repro.server.protocol import (
    RejectionReason,
    TaskAssignment,
    TaskRejection,
    TaskRequest,
    TaskResult,
)

DIM = 16
NUM_LABELS = 5


def _server(optimizer) -> FleetServer:
    return FleetServer(optimizer, IProf(), SLO(time_seconds=3.0))


def _build(preset: str, vectorized: bool) -> FleetServer:
    if preset == "adasgd":
        optimizer = make_adasgd(
            np.zeros(DIM), num_labels=NUM_LABELS, learning_rate=0.05
        )
    elif preset == "dynsgd":
        optimizer = make_dynsgd(np.zeros(DIM), learning_rate=0.05)
    elif preset == "fedavg":
        optimizer = make_fedavg(np.zeros(DIM), learning_rate=0.05)
    elif preset == "ssgd":
        optimizer = make_ssgd(np.zeros(DIM), learning_rate=0.05)
    elif preset == "fedavg_k3":  # partial aggregation window in checkpoints
        optimizer = make_fedavg(np.zeros(DIM), learning_rate=0.05, aggregation_k=3)
    else:  # pragma: no cover - test bug
        raise ValueError(preset)
    optimizer.vectorized = vectorized
    return _server(optimizer)


PRESETS = ["adasgd", "dynsgd", "fedavg", "ssgd", "fedavg_k3"]


def _update(rng, pull_step: int, worker=None) -> GradientUpdate:
    return GradientUpdate(
        gradient=rng.normal(size=DIM),
        pull_step=pull_step,
        label_counts=rng.integers(0, 8, size=NUM_LABELS).astype(float),
        batch_size=int(rng.integers(1, 9)),
        worker_id=worker,
    )


def _script(seed: int, rounds: int = 24) -> list[tuple]:
    """A deterministic mixed workload: deliveries + parameter overwrites.

    Pull steps are bounded by a conservative clock lower bound (results
    so far / 4) so staleness stays non-negative under any
    ``aggregation_k`` the presets use.
    """
    rng = np.random.default_rng(seed)
    events: list[tuple] = []
    results = 0
    for _ in range(rounds):
        if events and rng.random() < 0.15:
            events.append(("params", rng.normal(size=DIM)))
            continue
        count = int(rng.integers(1, 5))
        floor = results // 4
        updates = [
            _update(
                rng,
                pull_step=max(0, floor - int(rng.integers(0, 3))),
                worker=int(rng.integers(0, 20)) if rng.random() < 0.7 else None,
            )
            for _ in range(count)
        ]
        batched = count > 1 or rng.random() < 0.5
        events.append(("apply", updates, batched))
        results += count
    return events


def _play(server: FleetServer, events: list[tuple], manager=None, shard_id=None):
    for index, event in enumerate(events):
        if event[0] == "params":
            server.optimizer.set_parameters(event[1])
        else:
            server._deliver(list(event[1]), batched=event[2])
        if manager is not None:
            manager.maybe_checkpoint(shard_id, server, now=float(index))


def _assert_bit_identical(actual: FleetServer, expected: FleetServer) -> None:
    """Full mutable-state equality, via the checkpoint snapshot itself.

    The staleness ring is an uninitialized buffer filled as observations
    arrive: only the first ``min(total, size)`` slots carry state, so
    equality is asserted over that prefix (the rest is allocator noise
    in a server that never crashed).
    """
    arrays_a, meta_a = snapshot_state(actual)
    arrays_e, meta_e = snapshot_state(expected)
    assert set(arrays_a) == set(arrays_e)
    for key in sorted(arrays_a):
        value_a, value_e = arrays_a[key], arrays_e[key]
        if key == "staleness_ring":
            valid = min(int(meta_a["tracker_total"]), value_a.size)
            value_a, value_e = value_a[:valid], value_e[:valid]
        np.testing.assert_array_equal(value_a, value_e, err_msg=key)
    assert meta_a == meta_e


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_roundtrip_apply_and_params(self, tmp_path):
        rng = np.random.default_rng(0)
        wal = WriteAheadLog(tmp_path / "wal")
        updates = [
            _update(rng, pull_step=3, worker=7),
            GradientUpdate(  # no labels, no worker: optional-field framing
                gradient=rng.normal(size=DIM),
                pull_step=0,
                label_counts=None,
                batch_size=4,
                worker_id=None,
            ),
        ]
        seq0 = wal.log_apply(updates, clock=5, batched=True)
        params = rng.normal(size=DIM)
        seq1 = wal.log_parameters(params, clock=6)
        wal.close()
        assert (seq0, seq1) == (0, 1)

        records = read_records(tmp_path / "wal")
        assert [r.kind for r in records] == ["apply", "params"]
        apply, overwrite = records
        assert apply.batched is True and apply.clock == 5
        decoded = apply.updates()
        assert len(decoded) == 2
        np.testing.assert_array_equal(decoded[0].gradient, updates[0].gradient)
        np.testing.assert_array_equal(
            decoded[0].label_counts, updates[0].label_counts
        )
        assert decoded[0].worker_id == 7 and decoded[0].pull_step == 3
        assert decoded[1].worker_id is None and decoded[1].label_counts is None
        assert decoded[1].batch_size == 4
        np.testing.assert_array_equal(overwrite.parameters, params)

    def test_rotation_and_resume(self, tmp_path):
        rng = np.random.default_rng(1)
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=600)
        for step in range(8):
            wal.log_apply([_update(rng, pull_step=0)], clock=step, batched=False)
        wal.close()
        segments = sorted((tmp_path / "wal").glob("wal-*.seg"))
        assert len(segments) > 1  # 600 bytes cannot hold 8 gradient records
        records = read_records(tmp_path / "wal")
        assert [r.seq for r in records] == list(range(8))

        resumed = WriteAheadLog(tmp_path / "wal", segment_max_bytes=600)
        assert resumed.next_seq == 8
        resumed.log_apply([_update(rng, pull_step=0)], clock=8, batched=False)
        resumed.close()
        assert [r.seq for r in read_records(tmp_path / "wal")] == list(range(9))

    def test_start_seq_filters_prefix(self, tmp_path):
        rng = np.random.default_rng(2)
        wal = WriteAheadLog(tmp_path / "wal")
        for step in range(5):
            wal.log_apply([_update(rng, pull_step=0)], clock=step, batched=False)
        wal.close()
        tail = read_records(tmp_path / "wal", start_seq=3)
        assert [r.seq for r in tail] == [3, 4]

    def test_torn_tail_tolerated_and_truncated_on_reopen(self, tmp_path):
        rng = np.random.default_rng(3)
        wal = WriteAheadLog(tmp_path / "wal")
        for step in range(4):
            wal.log_apply([_update(rng, pull_step=0)], clock=step, batched=False)
        wal.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
        intact_size = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\xff\x00\x00\x00\x00\x00\x00\x00torn")

        # Reads stop at the torn frame; everything before it survives.
        summary = wal_summary(tmp_path / "wal")
        assert summary["intact"] is False
        assert summary["records"] == 4
        assert [r.seq for r in read_records(tmp_path / "wal")] == [0, 1, 2, 3]

        # Reopening truncates the tear so post-recovery appends stay
        # visible to the NEXT recovery.
        resumed = WriteAheadLog(tmp_path / "wal")
        assert segment.stat().st_size == intact_size
        assert resumed.next_seq == 4
        resumed.log_apply([_update(rng, pull_step=0)], clock=4, batched=False)
        resumed.close()
        summary = wal_summary(tmp_path / "wal")
        assert summary["intact"] is True
        assert [r.seq for r in read_records(tmp_path / "wal")] == [0, 1, 2, 3, 4]

    def test_crc_corruption_stops_read(self, tmp_path):
        rng = np.random.default_rng(4)
        wal = WriteAheadLog(tmp_path / "wal", compression_level=0)
        for step in range(3):
            wal.log_apply([_update(rng, pull_step=0)], clock=step, batched=False)
        wal.close()
        segment = sorted((tmp_path / "wal").glob("wal-*.seg"))[0]
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a byte inside the LAST record's payload
        segment.write_bytes(bytes(data))
        assert [r.seq for r in read_records(tmp_path / "wal")] == [0, 1]
        assert wal_summary(tmp_path / "wal")["intact"] is False

    def test_summary_counts(self, tmp_path):
        rng = np.random.default_rng(5)
        wal = WriteAheadLog(tmp_path / "wal")
        wal.log_apply(
            [_update(rng, pull_step=0) for _ in range(3)], clock=0, batched=True
        )
        wal.log_parameters(rng.normal(size=DIM), clock=3)
        wal.log_apply([_update(rng, pull_step=1)], clock=3, batched=False)
        wal.close()
        summary = wal_summary(tmp_path / "wal")
        assert summary["records"] == 3
        assert summary["apply_records"] == 2
        assert summary["param_records"] == 1
        assert summary["results_logged"] == 4
        assert summary["last_clock"] == 3
        assert summary["intact"] is True

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal", segment_max_bytes=0)
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal", compression_level=11)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_snapshot_roundtrip_bit_identical(self, tmp_path):
        source = _build("adasgd", vectorized=True)
        _play(source, _script(seed=10))
        store = CheckpointStore(tmp_path / "ckpt")
        store.save(source, wal_seq=17, now=4.5)

        target = _build("adasgd", vectorized=True)
        assert store.load_latest_into(target) == 17
        _assert_bit_identical(target, source)

        # The restored server keeps evolving identically.
        more = _script(seed=11, rounds=6)
        _play(source, more)
        _play(target, more)
        _assert_bit_identical(target, source)

    def test_manifest_prune_keeps_newest(self, tmp_path):
        server = _build("fedavg", vectorized=True)
        store = CheckpointStore(tmp_path / "ckpt", keep=2)
        for step in range(4):
            _play(server, _script(seed=20 + step, rounds=2))
            store.save(server, wal_seq=step * 3, now=float(step))
        entries = store.manifest()
        assert len(entries) == 2
        assert [e["wal_seq"] for e in entries] == [6, 9]
        archives = sorted(p.name for p in (tmp_path / "ckpt").glob("*.npz"))
        assert archives == [e["file"] for e in entries]
        assert store.latest()["wal_seq"] == 9
        summary = checkpoint_summary(tmp_path / "ckpt")
        assert summary["count"] == 2 and summary["latest_wal_seq"] == 9

    def test_empty_store_means_replay_from_origin(self, tmp_path):
        server = _build("fedavg", vectorized=True)
        assert CheckpointStore(tmp_path / "ckpt").load_latest_into(server) == 0

    def test_shape_mismatch_rejected(self, tmp_path):
        source = _build("fedavg", vectorized=True)
        store = CheckpointStore(tmp_path / "ckpt")
        store.save(source, wal_seq=0)
        wrong = _server(make_fedavg(np.zeros(DIM + 1)))
        with pytest.raises(ValueError):
            store.load_latest_into(wrong)


# ----------------------------------------------------------------------
# Failure detector
# ----------------------------------------------------------------------
class TestFailureDetector:
    def test_silence_past_timeout_marks_dead(self):
        detector = FailureDetector(timeout_s=10.0)
        detector.register("a", now=0.0)
        detector.register("b", now=0.0)
        detector.beat("a", now=8.0)
        assert detector.suspects(now=11.0) == ["b"]
        assert detector.is_dead("b") and not detector.is_dead("a")
        assert detector.suspects(now=11.0) == []  # newly-dead only once
        assert detector.dead() == ["b"]

    def test_dead_stays_dead_until_revived(self):
        detector = FailureDetector(timeout_s=5.0)
        detector.register("a", now=0.0)
        detector.mark_dead("a", now=1.0)
        detector.beat("a", now=2.0)  # a zombie beat must not resurrect it
        assert detector.is_dead("a")
        detector.revive("a", now=3.0)
        assert not detector.is_dead("a")
        assert detector.suspects(now=7.0) == []  # revival counted as a beat

    def test_deregister_is_not_a_failure(self):
        detector = FailureDetector(timeout_s=5.0)
        detector.register("a", now=0.0)
        detector.deregister("a")
        assert detector.suspects(now=100.0) == []
        assert detector.silence_s("a", now=100.0) == 0.0

    def test_beats_never_rewind(self):
        detector = FailureDetector(timeout_s=5.0)
        detector.register("a", now=10.0)
        detector.beat("a", now=4.0)  # stale beat from an out-of-order pump
        assert detector.silence_s("a", now=12.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureDetector(timeout_s=0.0)


# ----------------------------------------------------------------------
# Property: crash anywhere, restore bit-identically
# ----------------------------------------------------------------------
class TestCrashRestoreProperty:
    @pytest.mark.parametrize("vectorized", [True, False])
    @pytest.mark.parametrize("preset", PRESETS)
    def test_restore_matches_uninterrupted_run(self, preset, vectorized, tmp_path):
        seed = zlib.crc32(f"{preset}-{vectorized}".encode()) % (2**31)
        rng = np.random.default_rng(seed)
        events = _script(seed=seed)
        spec = DurabilitySpec(
            root_dir=tmp_path / "dur", checkpoint_every_updates=4
        )
        manager = DurabilityManager(spec)

        for trial in range(3):  # crash at three random applied indices
            shard_id = f"shard-{trial}"
            crash_at = int(rng.integers(1, len(events)))

            live = _build(preset, vectorized)
            manager.attach(shard_id, live, now=0.0)
            _play(live, events[:crash_at], manager=manager, shard_id=shard_id)
            manager.drop_attachment(shard_id)  # crash: state + handles lost

            oracle = _build(preset, vectorized)
            _play(oracle, events[:crash_at])

            restored = _build(preset, vectorized)
            report = manager.restore(shard_id, restored, now=1.0)
            _assert_bit_identical(restored, oracle)
            assert report.final_clock == restored.clock
            assert restored.wal is manager.shard(shard_id).wal

            # Post-recovery traffic continues bit-identically (and keeps
            # being logged: a SECOND restore must see it too).
            _play(restored, events[crash_at:], manager=manager, shard_id=shard_id)
            _play(oracle, events[crash_at:])
            _assert_bit_identical(restored, oracle)

            manager.drop_attachment(shard_id)
            twice = _build(preset, vectorized)
            manager.restore(shard_id, twice, now=2.0)
            _assert_bit_identical(twice, oracle)
            manager.detach(shard_id)

    def test_wal_only_restore_without_checkpoint(self, tmp_path):
        events = _script(seed=77)
        live = _build("dynsgd", vectorized=True)
        wal = WriteAheadLog(tmp_path / "wal")
        live.wal = wal
        live.optimizer.wal = wal
        _play(live, events)
        wal.close()

        oracle = _build("dynsgd", vectorized=True)
        _play(oracle, events)

        restored = _build("dynsgd", vectorized=True)
        report = restore_shard(
            restored, CheckpointStore(tmp_path / "ckpt"), tmp_path / "wal"
        )
        assert report.checkpoint_wal_seq == 0
        assert report.replayed_records == len(read_records(tmp_path / "wal"))
        _assert_bit_identical(restored, oracle)

    def test_replay_refuses_attached_wal(self, tmp_path):
        server = _build("fedavg", vectorized=True)
        wal = WriteAheadLog(tmp_path / "wal")
        server.wal = wal
        server.optimizer.wal = wal
        with pytest.raises(ValueError):
            replay(server, [])
        wal.close()

    def test_manager_lifecycle_errors(self, tmp_path):
        manager = DurabilityManager(DurabilitySpec(root_dir=tmp_path / "dur"))
        server = _build("fedavg", vectorized=True)
        manager.attach("s", server, now=0.0)
        with pytest.raises(ValueError):
            manager.attach("s", server)
        with pytest.raises(ValueError):
            manager.restore("s", _build("fedavg", vectorized=True))
        manager.close()

    def test_spec_validation(self, tmp_path):
        with pytest.raises(ValueError):
            DurabilitySpec(root_dir=tmp_path, checkpoint_every_updates=0)
        with pytest.raises(ValueError):
            DurabilitySpec(root_dir=tmp_path, detector_timeout_s=0.0)
        with pytest.raises(ValueError):
            DurabilitySpec(root_dir=tmp_path, keep_checkpoints=0)
        with pytest.raises(ValueError):
            DurabilitySpec(root_dir=tmp_path, compression_level=10)


# ----------------------------------------------------------------------
# Gateway failover end to end
# ----------------------------------------------------------------------
def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _request(worker_id: int) -> TaskRequest:
    return TaskRequest(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        label_counts=np.ones(NUM_LABELS),
    )


def _result(worker_id: int, pull_step: int, seed: int = 0) -> TaskResult:
    rng = np.random.default_rng(seed * 1000 + worker_id)
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=rng.normal(size=DIM),
        label_counts=np.ones(NUM_LABELS),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _durable_gateway(tmp_path, **spec_kwargs) -> Gateway:
    spec_kwargs.setdefault("checkpoint_every_updates", 5)
    spec_kwargs.setdefault("detector_timeout_s", 10.0)
    return Gateway.from_factory(
        4,
        lambda i: _server(make_fedavg(np.zeros(DIM), learning_rate=0.1)),
        GatewayConfig(batch_size=2, batch_deadline_s=1.0, sync_every_s=1e9),
        durability=DurabilitySpec(root_dir=tmp_path / "dur", **spec_kwargs),
    )


def _round(gateway: Gateway, now: float, workers, seed: int = 0) -> None:
    """One request/result round per worker at virtual time ``now``."""
    for worker_id in workers:
        response = gateway.handle_request(_request(worker_id), now=now)
        if isinstance(response, TaskAssignment):
            gateway.handle_result(
                _result(worker_id, response.pull_step, seed=seed), now=now
            )


class TestGatewayFailover:
    def test_crash_detect_failover_zero_acked_loss(self, tmp_path):
        gateway = _durable_gateway(tmp_path)
        workers = range(24)
        for step in range(3):
            _round(gateway, now=float(step), workers=workers, seed=step)

        victim = sorted(gateway.shards)[0]
        clock_before = gateway.clock
        applied_before = gateway.results_applied
        gateway.crash_shard(victim, now=3.0)
        assert victim not in gateway.shards
        # Monotone tier counters: the crashed shard's last observed
        # counts hold their place during the outage.
        assert gateway.clock == clock_before
        assert gateway.results_applied == applied_before

        # Requests routed to the crashed shard bounce; results for it
        # (in-flight leases from before the crash) are parked.
        rejected = 0
        for worker_id in workers:
            response = gateway.handle_request(_request(worker_id), now=4.0)
            if isinstance(response, TaskRejection):
                assert response.reason == RejectionReason.OVERLOADED
                rejected += 1
            else:
                gateway.handle_result(
                    _result(worker_id, response.pull_step, seed=9), now=4.0
                )
        assert rejected > 0
        assert gateway._unavailable.value == rejected

        # Silence past the detector timeout -> detected dead -> auto
        # failover from the pump, under the SAME shard id.
        gateway.heartbeat(now=20.0)
        assert victim in gateway.shards
        assert gateway.durability.restores == 1
        assert not gateway.detector.is_dead(victim)
        kinds = gateway.journal.counts_by_kind()
        assert kinds["shard_crash"] == 2  # injection + detector verdicts
        assert kinds["failover_start"] == 1
        assert kinds["failover_done"] == 1
        assert gateway.clock >= clock_before

        _round(gateway, now=21.0, workers=workers, seed=21)
        gateway.finalize(now=30.0)
        # Zero acked-upload loss: every accepted result reached a model.
        assert gateway.results_applied == gateway.results_received()

        done = [e for e in gateway.journal.events if e.kind == "failover_done"]
        assert done[0].shard_id == victim
        assert done[0].restored_clock > 0
        assert done[0].recovery_s == pytest.approx(20.0 - 3.0)

    def test_finalize_forces_failover_of_crashed_shards(self, tmp_path):
        gateway = _durable_gateway(tmp_path)
        _round(gateway, now=0.0, workers=range(16))
        victim = sorted(gateway.shards)[-1]
        gateway.crash_shard(victim, now=1.0)
        gateway.finalize(now=2.0)  # before the detector timeout
        assert victim in gateway.shards
        assert gateway.durability.restores == 1
        assert gateway.results_applied == gateway.results_received()

    def test_manual_failover_when_auto_off(self, tmp_path):
        gateway = _durable_gateway(tmp_path, auto_failover=False)
        _round(gateway, now=0.0, workers=range(16))
        victim = sorted(gateway.shards)[0]
        gateway.crash_shard(victim, now=1.0)
        gateway.heartbeat(now=50.0)
        assert gateway.detector.is_dead(victim)  # detected ...
        assert victim not in gateway.shards  # ... but not auto-restored
        report = gateway.failover(victim, now=51.0)
        assert victim in gateway.shards
        # Parked results are redelivered after the restore, so the live
        # clock may already be past the replayed one.
        assert gateway.shards[victim].clock >= report.final_clock

    def test_failover_requires_a_crash(self, tmp_path):
        gateway = _durable_gateway(tmp_path)
        with pytest.raises(ValueError):
            gateway.failover(sorted(gateway.shards)[0])
        with pytest.raises(KeyError):
            gateway.crash_shard("no-such-shard")

    def test_crash_needs_durability(self):
        gateway = Gateway.from_factory(
            2,
            lambda i: _server(make_fedavg(np.zeros(DIM))),
            GatewayConfig(batch_size=1),
        )
        with pytest.raises(ValueError):
            gateway.crash_shard(sorted(gateway.shards)[0])

    def test_retired_shard_is_restorable(self, tmp_path):
        """Planned removal and crash recovery share one durable format."""
        gateway = _durable_gateway(tmp_path)
        for step in range(3):
            _round(gateway, now=float(step), workers=range(20), seed=step)
        before = set(gateway.shards)
        retired_id = gateway.scale_down(now=5.0)
        assert retired_id in before and retired_id not in gateway.shards

        retired = checkpoint_summary(tmp_path / "dur" / retired_id / "checkpoints")
        assert retired["count"] >= 1

        # The final checkpoint captures the shard AFTER its farewell
        # sync: restoring it yields a live-equivalent server.
        fresh = _server(make_fedavg(np.zeros(DIM), learning_rate=0.1))
        report = restore_shard(
            fresh,
            CheckpointStore(tmp_path / "dur" / retired_id / "checkpoints"),
            tmp_path / "dur" / retired_id / "wal",
        )
        assert report.replayed_records == 0  # retirement checkpoint is final
        assert fresh.clock == retired["latest_clock"]
        assert not gateway.detector.is_dead(retired_id)
        gateway.finalize(now=6.0)
        assert gateway.results_applied == gateway.results_received()

    def test_add_shard_gets_durability_attached(self, tmp_path):
        gateway = _durable_gateway(tmp_path)
        _round(gateway, now=0.0, workers=range(8))
        added = gateway.scale_up(now=1.0)
        assert gateway.durability.has(added)
        assert (tmp_path / "dur" / added / "checkpoints" / "manifest.json").exists()
        _round(gateway, now=2.0, workers=range(8))
        gateway.finalize(now=3.0)
        assert gateway.results_applied == gateway.results_received()

    def test_journal_streams_through_failover(self, tmp_path):
        journal_path = tmp_path / "dur" / "journal.jsonl"
        gateway = _durable_gateway(tmp_path, journal_path=journal_path)
        _round(gateway, now=0.0, workers=range(16))
        victim = sorted(gateway.shards)[0]
        gateway.crash_shard(victim, now=1.0)
        # The crash record is already on disk — BEFORE any recovery.
        kinds = [r["kind"] for r in load_jsonl(journal_path)]
        assert "shard_crash" in kinds
        gateway.heartbeat(now=30.0)
        kinds = [r["kind"] for r in load_jsonl(journal_path)]
        assert "failover_done" in kinds


# ----------------------------------------------------------------------
# Journal streaming / export satellites
# ----------------------------------------------------------------------
class TestJournalExport:
    def test_stream_to_writes_through(self, tmp_path):
        journal = EventJournal()
        path = tmp_path / "nested" / "dir" / "journal.jsonl"
        journal.stream_to(path)  # creates parent directories
        journal.evaluation(time=1.0, accuracy=0.5, model_updates=10)
        # On disk immediately, without close_stream or export.
        records = load_jsonl(path)
        assert len(records) == 1 and records[0]["kind"] == "eval"
        journal.shard_crash(time=2.0, shard_id="s", clock=3, detected_by="detector")
        assert len(load_jsonl(path)) == 2
        journal.close_stream()
        journal.evaluation(time=3.0, accuracy=0.6, model_updates=20)
        assert len(load_jsonl(path)) == 2  # stream closed; ring still records
        assert journal.recorded == 3

    def test_stream_appends_across_restarts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = EventJournal()
        first.stream_to(path, fsync=True)
        first.evaluation(time=1.0, accuracy=0.1, model_updates=1)
        first.close_stream()
        second = EventJournal()
        second.stream_to(path)
        second.evaluation(time=2.0, accuracy=0.2, model_updates=2)
        second.close_stream()
        assert [r["time"] for r in load_jsonl(path)] == [1.0, 2.0]

    def test_export_append_and_fsync(self, tmp_path):
        journal = EventJournal()
        journal.evaluation(time=1.0, accuracy=0.5, model_updates=10)
        path = tmp_path / "out.jsonl"
        assert journal.export_jsonl(path) == 1
        assert journal.export_jsonl(path, append=True, fsync=True) == 1
        assert len(load_jsonl(path)) == 2
        assert journal.export_jsonl(path, extra=[{"kind": "x"}]) == 2
        assert len(load_jsonl(path)) == 2  # truncating export replaced the file


# ----------------------------------------------------------------------
# Builder + simulation plumbing
# ----------------------------------------------------------------------
class TestDurabilityPlumbing:
    def test_builder_spec_rides_to_gateway(self, tmp_path):
        from repro.api import FleetBuilder

        spec = (
            FleetBuilder(np.zeros(DIM))
            .algorithm("fedavg")
            .durability(root_dir=tmp_path / "dur", checkpoint_every_updates=7)
            .spec()
        )
        assert spec.durability.checkpoint_every_updates == 7
        gateway = Gateway.from_spec(2, spec, GatewayConfig(batch_size=1))
        assert gateway.durability is not None
        assert gateway.detector is not None
        for shard_id in gateway.shards:
            assert gateway.durability.has(shard_id)
        gateway.finalize(now=1.0)

    def test_builder_rejects_spec_plus_kwargs(self, tmp_path):
        from repro.api import FleetBuilder

        with pytest.raises(ValueError):
            FleetBuilder().durability(
                DurabilitySpec(root_dir=tmp_path), root_dir=tmp_path
            )

    def test_fleet_sim_crash_config_validation(self):
        from repro.simulation.fleet_sim import FleetSimConfig

        with pytest.raises(ValueError):
            FleetSimConfig(crash_shard_at_s=-1.0)
        with pytest.raises(ValueError):
            FleetSimConfig(crash_shard="shard-0")  # needs a crash time
