"""Tests for the synthetic temporal tweet stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tweets import TweetStream, TweetStreamConfig


@pytest.fixture(scope="module")
def stream():
    return TweetStream(TweetStreamConfig(
        num_days=4, tweets_per_hour=20, num_users=15,
        vocab_size=80, num_hashtags=20, seed=1,
    ))


class TestGeneration:
    def test_stream_is_sorted(self, stream):
        times = [t.timestamp for t in stream.tweets]
        assert times == sorted(times)

    def test_tweets_have_valid_fields(self, stream):
        cfg = stream.config
        for tweet in stream.tweets[:200]:
            assert 0 <= tweet.user_id < cfg.num_users
            assert tweet.tokens.shape == (cfg.tokens_per_tweet,)
            assert tweet.tokens.min() >= 0
            assert tweet.tokens.max() < cfg.vocab_size
            assert len(tweet.hashtags) >= 1
            assert all(0 <= h < cfg.num_hashtags for h in tweet.hashtags)

    def test_determinism(self):
        cfg = TweetStreamConfig(num_days=2, seed=7)
        a, b = TweetStream(cfg), TweetStream(cfg)
        assert len(a.tweets) == len(b.tweets)
        assert all(
            ta.timestamp == tb.timestamp and ta.hashtags == tb.hashtags
            for ta, tb in zip(a.tweets[:100], b.tweets[:100])
        )

    def test_volume_roughly_matches_config(self, stream):
        hours = stream.config.num_days * 24
        per_hour = len(stream.tweets) / hours
        assert 0.4 * stream.config.tweets_per_hour < per_hour < 3.0 * stream.config.tweets_per_hour


class TestTemporalDrift:
    def test_popularity_drifts_between_days(self, stream):
        """The top hashtags of day 0 and day 2 must differ — the drift that
        makes Online FL beat Standard FL."""
        chunks = stream.chunks(chunk_hours=24.0)
        day0 = stream.hashtag_counts(chunks[0])
        day2 = stream.hashtag_counts(chunks[2])
        top0 = set(np.argsort(-day0)[:5])
        top2 = set(np.argsort(-day2)[:5])
        assert top0 != top2

    def test_intensity_nonnegative(self, stream):
        for hour in [0.0, 10.0, 50.0]:
            assert (stream.hashtag_intensity(hour) >= 0).all()

    def test_unborn_hashtags_silent(self, stream):
        intensity = stream.hashtag_intensity(-1000.0)
        assert np.allclose(intensity, 0.0)


class TestChunking:
    def test_chunks_partition_stream(self, stream):
        chunks = stream.chunks(chunk_hours=1.0)
        assert sum(len(c) for c in chunks) == len(stream.tweets)
        assert len(chunks) == stream.config.num_days * 24

    def test_chunk_time_bounds(self, stream):
        for idx, chunk in enumerate(stream.chunks(chunk_hours=1.0)):
            for tweet in chunk:
                assert idx * 3600 <= tweet.timestamp < (idx + 1) * 3600 + 1e-9

    def test_shards_group_chunks(self, stream):
        shards = stream.shards(shard_days=2)
        assert len(shards) == 2
        assert all(len(s) == 48 for s in shards)

    def test_invalid_chunk_hours(self, stream):
        with pytest.raises(ValueError):
            stream.chunks(chunk_hours=0.0)


class TestModelIO:
    def test_to_arrays(self, stream):
        tweets = stream.tweets[:10]
        xs, ys, sets = stream.to_arrays(tweets)
        assert xs.shape == (10, stream.config.tokens_per_tweet)
        assert ys.shape == (10, stream.config.num_hashtags)
        for i, tweet in enumerate(tweets):
            assert set(np.nonzero(ys[i])[0]) == set(tweet.hashtags) == sets[i]

    def test_group_by_user(self, stream):
        groups = stream.group_by_user(stream.tweets[:100])
        total = sum(len(v) for v in groups.values())
        assert total == 100
        for user, tweets in groups.items():
            assert all(t.user_id == user for t in tweets)

    def test_hashtag_counts(self, stream):
        counts = stream.hashtag_counts(stream.tweets)
        assert counts.sum() == sum(len(t.hashtags) for t in stream.tweets)


class TestSignal:
    def test_tokens_predict_hashtags(self, stream):
        """Signature tokens must co-occur with their hashtag far more often
        than chance, otherwise the recommender task is unlearnable."""
        cfg = stream.config
        # For each hashtag, count how often its signature tokens appear in
        # its own tweets vs all tweets.
        sig = stream._signatures
        hits, total = 0, 0
        for tweet in stream.tweets[:400]:
            tag = next(iter(tweet.hashtags))
            hits += np.isin(tweet.tokens, sig[tag]).sum()
            total += tweet.tokens.size
        signal_rate = hits / total
        chance = cfg.signature_tokens / cfg.vocab_size
        assert signal_rate > 5 * chance
