"""Tests for the wire codec and transfer-cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import build_hashtag_rnn
from repro.server.codec import TransferCostModel, VectorCodec


class TestVectorCodec:
    def test_lossless_f64_roundtrip(self):
        rng = np.random.default_rng(0)
        vec = rng.normal(size=1000)
        codec = VectorCodec(precision="f64")
        assert np.array_equal(codec.decode(codec.encode(vec)), vec)

    def test_f16_quantization_error_bounded(self):
        rng = np.random.default_rng(1)
        vec = rng.normal(size=1000)
        codec = VectorCodec(precision="f16")
        assert codec.roundtrip_error(vec) < 1e-2

    def test_f32_much_tighter_than_f16(self):
        rng = np.random.default_rng(2)
        vec = rng.normal(size=1000)
        err32 = VectorCodec(precision="f32").roundtrip_error(vec)
        err16 = VectorCodec(precision="f16").roundtrip_error(vec)
        assert err32 < err16 / 100

    def test_compression_shrinks_redundant_payloads(self):
        vec = np.zeros(10_000)
        blob = VectorCodec(precision="f32").encode(vec)
        assert blob.wire_bytes < 10_000 * 4 / 10

    def test_quantization_halves_wire_size(self):
        rng = np.random.default_rng(3)
        vec = rng.normal(size=20_000)   # incompressible noise
        b64 = VectorCodec(precision="f64", compression_level=1).encode(vec)
        b16 = VectorCodec(precision="f16", compression_level=1).encode(vec)
        assert b16.wire_bytes < b64.wire_bytes / 3

    def test_metadata(self):
        blob = VectorCodec(precision="f32").encode(np.ones(7))
        assert blob.length == 7
        assert blob.dtype == "f32"

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorCodec(precision="f8")
        with pytest.raises(ValueError):
            VectorCodec(compression_level=10)

    def test_corrupted_length_detected(self):
        codec = VectorCodec(precision="f32")
        blob = codec.encode(np.ones(5))
        from repro.server.codec import EncodedBlob

        bad = EncodedBlob(payload=blob.payload, dtype=blob.dtype, length=6)
        with pytest.raises(ValueError):
            codec.decode(bad)


class TestTransferCostModel:
    def test_paper_model_size_on_4g(self):
        """The paper estimates 1.1 s on 4G for moving the 123 k-parameter
        model down and the gradient up; our codec + cost model should land
        in the same ballpark."""
        model = build_hashtag_rnn(np.random.default_rng(0))
        codec = VectorCodec(precision="f32", compression_level=1)
        blob = codec.encode(model.get_parameters())
        cost = TransferCostModel(throughput_mbps=12.0, rtt_s=0.05)
        seconds = cost.round_trip_seconds(blob.wire_bytes, blob.wire_bytes)
        assert 0.2 < seconds < 3.0

    def test_3g_slower_than_4g(self):
        fast = TransferCostModel(throughput_mbps=12.0)
        slow = TransferCostModel(throughput_mbps=3.0)
        assert slow.seconds(1_000_000) > fast.seconds(1_000_000)

    def test_rtt_floor(self):
        cost = TransferCostModel(throughput_mbps=10.0, rtt_s=0.2)
        assert cost.seconds(0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferCostModel(throughput_mbps=0.0)
        with pytest.raises(ValueError):
            TransferCostModel(rtt_s=-1.0)
        with pytest.raises(ValueError):
            TransferCostModel().seconds(-1)
