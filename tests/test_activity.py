"""Tests for the user-activity model and quiet-window scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import UserActivityModel, find_quiet_window


class TestActivityModel:
    def test_intensity_bounds(self):
        model = UserActivityModel(seed=0)
        times = np.linspace(0, 24 * 3600, 500)
        values = [model.intensity(float(t)) for t in times]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_zero_outside_sessions(self):
        model = UserActivityModel(seed=1)
        outside = [
            t for t in np.linspace(0, 24 * 3600, 1000) if not model.in_session(float(t))
        ]
        assert outside, "model should have idle gaps"
        assert all(model.intensity(float(t)) == 0.0 for t in outside[:50])

    def test_sessions_exist(self):
        model = UserActivityModel(seed=2)
        inside = [
            t for t in np.linspace(0, 24 * 3600, 2000) if model.in_session(float(t))
        ]
        assert len(inside) > 10

    def test_deterministic(self):
        a = UserActivityModel(seed=3)
        b = UserActivityModel(seed=3)
        for t in np.linspace(0, 86400, 100):
            assert a.intensity(float(t)) == b.intensity(float(t))

    def test_different_seeds_differ(self):
        a = UserActivityModel(seed=4)
        b = UserActivityModel(seed=5)
        values_a = [a.in_session(float(t)) for t in np.linspace(0, 86400, 300)]
        values_b = [b.in_session(float(t)) for t in np.linspace(0, 86400, 300)]
        assert values_a != values_b

    def test_invalid_duty_cycle(self):
        with pytest.raises(ValueError):
            UserActivityModel(interaction_duty_cycle=0.0)


class TestQuietWindow:
    def test_finds_idle_gap(self):
        model = UserActivityModel(seed=6)
        # Find a time with no session, then the scheduler must accept it.
        for t in np.linspace(0, 86400, 2000):
            if not model.in_session(float(t)) and not model.in_session(float(t) + 120):
                start = find_quiet_window(model, float(t), duration_s=60.0)
                assert start is not None
                assert start >= t
                return
        pytest.skip("no idle gap in this seed")

    def test_respects_duration(self):
        model = UserActivityModel(seed=7)
        window = find_quiet_window(model, 0.0, duration_s=120.0, threshold=0.2)
        if window is not None:
            for probe in np.arange(window, window + 120.0, 15.0):
                assert model.intensity(float(probe)) <= 0.2

    def test_none_when_user_always_active(self):
        model = UserActivityModel(
            seed=8, session_rate_per_hour=1000.0, mean_session_minutes=600.0,
            interaction_duty_cycle=1.0,
        )
        window = find_quiet_window(
            model, 12 * 3600.0, duration_s=300.0, horizon_s=900.0, threshold=0.01
        )
        assert window is None

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            find_quiet_window(UserActivityModel(seed=9), 0.0, duration_s=0.0)
