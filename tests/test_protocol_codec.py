"""Protocol round-trips through the wire codec (gateway transport path).

The gateway batcher holds results in codec wire form
(:func:`repro.gateway.batching.encode_result` /
:func:`~repro.gateway.batching.decode_result`); these tests pin down that
an encode → decode round trip preserves the gradient payload (exactly at
f64, within quantization tolerance below) and every metadata field the
batcher, the profiler and the shard optimizer consume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices.device import DeviceFeatures
from repro.gateway.batching import decode_result, encode_result
from repro.server.codec import VectorCodec
from repro.server.protocol import TaskResult


def _make_result(gradient: np.ndarray) -> TaskResult:
    return TaskResult(
        worker_id=42,
        device_model="Pixel",
        features=DeviceFeatures(
            available_memory_mb=512.0,
            total_memory_mb=2048.0,
            temperature_c=35.5,
            sum_max_freq_ghz=6.4,
            energy_per_cpu_second=3.1e-4,
        ),
        pull_step=17,
        gradient=gradient,
        label_counts=np.array([3.0, 0.0, 5.0, 1.0]),
        batch_size=96,
        computation_time_s=2.75,
        energy_percent=0.045,
    )


class TestTaskResultRoundTrip:
    def test_f64_roundtrip_is_exact(self):
        rng = np.random.default_rng(0)
        original = _make_result(rng.normal(size=500))
        codec = VectorCodec(precision="f64")
        decoded = decode_result(encode_result(original, codec), codec)
        np.testing.assert_array_equal(decoded.gradient, original.gradient)

    @pytest.mark.parametrize("precision,tolerance", [("f32", 1e-6), ("f16", 1e-2)])
    def test_lossy_roundtrip_within_quantization(self, precision, tolerance):
        rng = np.random.default_rng(1)
        original = _make_result(rng.normal(size=500))
        codec = VectorCodec(precision=precision)
        decoded = decode_result(encode_result(original, codec), codec)
        assert np.abs(decoded.gradient - original.gradient).max() < tolerance

    def test_metadata_preserved_exactly(self):
        """Everything the gateway batcher routes on must survive untouched."""
        rng = np.random.default_rng(2)
        original = _make_result(rng.normal(size=64))
        codec = VectorCodec(precision="f16")  # lossiest transport
        decoded = decode_result(encode_result(original, codec), codec)

        assert decoded.worker_id == original.worker_id
        assert decoded.device_model == original.device_model
        assert decoded.pull_step == original.pull_step
        assert decoded.batch_size == original.batch_size
        assert decoded.computation_time_s == original.computation_time_s
        assert decoded.energy_percent == original.energy_percent
        assert decoded.features == original.features
        np.testing.assert_array_equal(decoded.label_counts, original.label_counts)

    def test_wire_form_is_compact(self):
        rng = np.random.default_rng(3)
        gradient = rng.normal(size=10_000)
        encoded = encode_result(_make_result(gradient), VectorCodec(precision="f16"))
        assert encoded.wire_bytes < gradient.nbytes / 3
        # The encoded form drops the dense gradient entirely.
        assert encoded.metadata.gradient.size == 0

    def test_blob_metadata_consistent(self):
        codec = VectorCodec(precision="f32")
        encoded = encode_result(_make_result(np.ones(7)), codec)
        assert encoded.blob.length == 7
        assert encoded.blob.dtype == "f32"
