"""Tests for client selection and drift detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.server.selection import CandidateClient, select_cohort
from repro.simulation.drift import QualityDriftDetector


def _client(wid, compute, upload=0.0):
    return CandidateClient(wid, predicted_time_s=compute, predicted_upload_s=upload)


class TestSelectCohort:
    def test_all_fit(self):
        result = select_cohort([_client(0, 1.0), _client(1, 2.0)], 5.0)
        assert set(result.selected) == {0, 1}
        assert result.deferred == ()
        assert result.predicted_round_s == 2.0

    def test_slow_client_deferred(self):
        result = select_cohort(
            [_client(0, 1.0), _client(1, 10.0), _client(2, 2.0)], 5.0
        )
        assert set(result.selected) == {0, 2}
        assert result.deferred == (1,)

    def test_upload_time_counts(self):
        result = select_cohort([_client(0, 3.0, upload=4.0)], 5.0)
        assert result.selected == ()
        assert result.deferred == (0,)

    def test_max_cohort_cap(self):
        clients = [_client(i, float(i + 1)) for i in range(5)]
        result = select_cohort(clients, 100.0, max_cohort=2)
        # The two fastest are kept.
        assert set(result.selected) == {0, 1}
        assert len(result.deferred) == 3

    def test_maximum_cardinality(self):
        """Greedy shortest-first selects the provably largest cohort."""
        rng = np.random.default_rng(0)
        times = rng.uniform(0.5, 10.0, size=30)
        clients = [_client(i, float(t)) for i, t in enumerate(times)]
        deadline = 5.0
        result = select_cohort(clients, deadline)
        assert len(result.selected) == int((times <= deadline).sum())

    def test_empty_candidates(self):
        result = select_cohort([], 5.0)
        assert result.selected == ()
        assert result.predicted_round_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            select_cohort([], 0.0)
        with pytest.raises(ValueError):
            select_cohort([], 5.0, max_cohort=0)


class TestDriftDetector:
    def test_stable_stream_no_drift(self):
        detector = QualityDriftDetector(reference_window=10, recent_window=3,
                                        threshold=0.1)
        rng = np.random.default_rng(0)
        flags = [detector.observe(0.5 + 0.01 * rng.random()) for _ in range(100)]
        assert not any(flags)

    def test_quality_drop_detected(self):
        detector = QualityDriftDetector(reference_window=10, recent_window=3,
                                        threshold=0.1)
        for _ in range(20):
            detector.observe(0.6)
        flags = [detector.observe(0.2) for _ in range(6)]
        assert any(flags)
        assert detector.drifts_detected >= 1

    def test_no_retrigger_in_same_regime(self):
        detector = QualityDriftDetector(reference_window=10, recent_window=3,
                                        threshold=0.1)
        for _ in range(20):
            detector.observe(0.6)
        flags = [detector.observe(0.2) for _ in range(30)]
        assert sum(flags) == 1

    def test_improvement_is_not_drift(self):
        detector = QualityDriftDetector(reference_window=10, recent_window=3,
                                        threshold=0.1)
        for _ in range(20):
            detector.observe(0.3)
        flags = [detector.observe(0.9) for _ in range(10)]
        assert not any(flags)

    def test_means_exposed(self):
        detector = QualityDriftDetector(reference_window=5, recent_window=2,
                                        threshold=0.1)
        assert detector.reference_mean is None
        detector.observe(0.5)
        assert detector.reference_mean == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityDriftDetector(reference_window=0)
        with pytest.raises(ValueError):
            QualityDriftDetector(reference_window=5, recent_window=5)
        with pytest.raises(ValueError):
            QualityDriftDetector(threshold=0.0)
