"""Tests for the simulation package: events, latency, staleness, runners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_adasgd, make_dynsgd, make_ssgd
from repro.data import make_mnist_like, shard_non_iid_split
from repro.nn import build_logistic
from repro.simulation import (
    D1,
    D2,
    ConstantStaleness,
    EventLoop,
    GaussianStaleness,
    LongTail,
    ShiftedExponentialLatency,
    paper_latency_model,
    run_staleness_experiment,
    staleness_from_timestamps,
)
from repro.simulation.runner import TaskContext


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.run_all()
        assert seen == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        loop = EventLoop()
        seen = []
        for name in "abc":
            loop.schedule(1.0, lambda n=name: seen.append(n))
        loop.run_all()
        assert seen == ["a", "b", "c"]

    def test_run_until_horizon(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(5.0, lambda: seen.append(5))
        loop.run_until(2.0)
        assert seen == [1]
        assert loop.now == 2.0
        assert loop.pending == 1

    def test_chained_scheduling(self):
        loop = EventLoop()
        seen = []

        def tick():
            seen.append(loop.now)
            if loop.now < 3.0:
                loop.schedule(1.0, tick)

        loop.schedule(1.0, tick)
        loop.run_all()
        assert seen == [1.0, 2.0, 3.0]

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: loop.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            loop.run_all()

    def test_event_budget(self):
        loop = EventLoop()

        def forever():
            loop.schedule(1.0, forever)

        loop.schedule(1.0, forever)
        with pytest.raises(RuntimeError):
            loop.run_all(max_events=100)


class TestLatency:
    def test_minimum_respected(self):
        model = ShiftedExponentialLatency(7.1, 8.45, np.random.default_rng(0))
        samples = model.sample(size=1000)
        assert samples.min() >= 7.1

    def test_mean(self):
        model = ShiftedExponentialLatency(7.1, 8.45, np.random.default_rng(1))
        samples = model.sample(size=50_000)
        assert samples.mean() == pytest.approx(8.45, rel=0.02)

    def test_paper_model_constants(self):
        model = paper_latency_model(np.random.default_rng(2))
        assert model.minimum_s == pytest.approx(7.1)
        assert model.mean_s == pytest.approx(8.45)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ShiftedExponentialLatency(-1.0, 5.0, rng)
        with pytest.raises(ValueError):
            ShiftedExponentialLatency(5.0, 5.0, rng)


class TestStalenessProcesses:
    def test_gaussian_clipped_non_negative(self):
        process = GaussianStaleness(1.0, 5.0, np.random.default_rng(3))
        samples = [process.sample() for _ in range(500)]
        assert min(samples) >= 0
        assert all(isinstance(s, int) for s in samples)

    def test_d1_d2_parameters(self):
        rng = np.random.default_rng(4)
        assert D1(rng).mu == 6.0 and D1(rng).sigma == 2.0
        assert D2(rng).mu == 12.0 and D2(rng).sigma == 4.0

    def test_tau_thres_three_sigma(self):
        process = D1(np.random.default_rng(5))
        assert process.tau_thres(99.7) == pytest.approx(12.0)
        process2 = D2(np.random.default_rng(6))
        assert process2.tau_thres(99.7) == pytest.approx(24.0)

    def test_constant(self):
        assert ConstantStaleness(4).sample() == 4
        with pytest.raises(ValueError):
            ConstantStaleness(-1)

    def test_long_tail_predicate(self):
        base = ConstantStaleness(2)
        process = LongTail(
            base,
            predicate=lambda ctx: 0 in set(ctx.labels),
            straggler_tau=48,
        )
        with_zero = TaskContext(worker_id=0, labels=np.array([0, 1]))
        without = TaskContext(worker_id=0, labels=np.array([1, 2]))
        assert process.sample(with_zero) == 48
        assert process.sample(without) == 2

    def test_staleness_from_timestamps_gaussian_body(self):
        """Fig. 7: uniform arrivals through the exponential latency model
        give a unimodal staleness distribution with positive mass."""
        rng = np.random.default_rng(7)
        timestamps = np.sort(rng.uniform(0, 3600.0, size=3000))
        latency = paper_latency_model(np.random.default_rng(8))
        staleness = staleness_from_timestamps(timestamps, latency)
        assert staleness.min() >= 0
        assert staleness.mean() > 1.0
        # Mode away from the extremes (Gaussian-ish body).
        hist = np.bincount(staleness)
        assert hist.argmax() > 0

    def test_burst_creates_long_tail(self):
        """Peak-hour bursts must inflate the tail (the Fig. 7 long tail)."""
        rng = np.random.default_rng(9)
        quiet = np.sort(rng.uniform(0, 3600, size=500))
        burst = np.sort(rng.uniform(1800, 1860, size=1500))   # peak minute
        timestamps = np.sort(np.concatenate([quiet, burst]))
        latency = paper_latency_model(np.random.default_rng(10))
        staleness = staleness_from_timestamps(timestamps, latency)
        quiet_only = staleness_from_timestamps(quiet, paper_latency_model(
            np.random.default_rng(10)))
        assert staleness.max() > 4 * max(quiet_only.max(), 1)


class TestRunner:
    def _setup(self, seed=0):
        rng = np.random.default_rng(seed)
        dataset = make_mnist_like(seed=seed, train_per_class=20, test_per_class=5)
        partition = shard_non_iid_split(dataset.train_y, 10, rng)
        model = build_logistic(np.random.default_rng(seed + 1), 28 * 28, 10)
        return dataset, partition, model

    def test_ssgd_converges(self):
        dataset, partition, model = self._setup()
        server = make_ssgd(model.get_parameters(), learning_rate=0.5)
        curve = run_staleness_experiment(
            server, model, dataset, partition, None, num_steps=150,
            rng=np.random.default_rng(2), batch_size=32, eval_every=50,
        )
        assert curve.accuracy[-1] > 0.5
        assert curve.steps[-1] == 150

    def test_staleness_matches_injected_distribution(self):
        dataset, partition, model = self._setup()
        server = make_dynsgd(model.get_parameters(), learning_rate=0.1)
        process = GaussianStaleness(5.0, 1.0, np.random.default_rng(3))
        run_staleness_experiment(
            server, model, dataset, partition, process, num_steps=120,
            rng=np.random.default_rng(4), batch_size=16, eval_every=1000,
        )
        observed = server.applied_staleness()
        # Early steps are capped by the short history; check the steady state.
        steady = observed[40:]
        assert abs(steady.mean() - 5.0) < 1.0

    def test_dp_noise_applied(self):
        dataset, partition, model = self._setup()
        server = make_ssgd(model.get_parameters(), learning_rate=0.1)
        curve = run_staleness_experiment(
            server, model, dataset, partition, None, num_steps=30,
            rng=np.random.default_rng(5), batch_size=16, eval_every=30,
            noise_multiplier=10.0, clip_norm=0.5,
        )
        # With huge noise, accuracy stays near chance — proves noise is live.
        assert curve.accuracy[-1] < 0.6

    def test_track_class_records_per_class_curve(self):
        dataset, partition, model = self._setup()
        server = make_adasgd(
            model.get_parameters(), num_labels=10, learning_rate=0.3,
            initial_tau_thres=12.0,
        )
        curve = run_staleness_experiment(
            server, model, dataset, partition, None, num_steps=60,
            rng=np.random.default_rng(6), batch_size=16, eval_every=20,
            track_class=0,
        )
        assert len(curve.per_class) == len(curve.steps)

    def test_batch_size_sampler(self):
        dataset, partition, model = self._setup()
        server = make_ssgd(model.get_parameters(), learning_rate=0.1)
        run_staleness_experiment(
            server, model, dataset, partition, None, num_steps=20,
            rng=np.random.default_rng(7),
            batch_size_sampler=lambda rng: int(rng.integers(1, 5)),
            eval_every=100,
        )
        assert server.clock == 20
