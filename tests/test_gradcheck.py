"""Tests for the finite-difference gradient-checking utilities themselves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import max_relative_error, numerical_gradient


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda v: float((v**2).sum()), x.copy())
        assert np.allclose(grad, 2 * x, atol=1e-6)

    def test_linear(self):
        coeffs = np.array([[2.0, -1.0], [0.5, 4.0]])
        x = np.zeros((2, 2))
        grad = numerical_gradient(lambda v: float((coeffs * v).sum()), x)
        assert np.allclose(grad, coeffs, atol=1e-8)

    def test_does_not_mutate_input(self):
        x = np.array([1.0, 2.0])
        original = x.copy()
        numerical_gradient(lambda v: float(v.sum()), x)
        assert np.array_equal(x, original)


class TestMaxRelativeError:
    def test_zero_for_identical(self):
        a = np.array([1.0, 2.0])
        assert max_relative_error(a, a.copy()) == 0.0

    def test_scale_invariance(self):
        a = np.array([1.0])
        b = np.array([1.1])
        big_a, big_b = a * 1e6, b * 1e6
        assert max_relative_error(a, b) == pytest.approx(
            max_relative_error(big_a, big_b)
        )

    def test_detects_sign_flip(self):
        a = np.array([1.0])
        b = np.array([-1.0])
        assert max_relative_error(a, b) == pytest.approx(1.0)
