"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "repro" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "staleness" in out
        assert "online" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Galaxy S7" in out
        assert "Honor 10" in out

    def test_dampening(self, capsys):
        assert main(["dampening", "--tau-thres", "12"]) == 0
        out = capsys.readouterr().out
        assert "beta" in out
        assert "AdaSGD" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["staleness"])
        assert args.algorithm == "adasgd"
        assert args.mu == 6.0


class TestExperiments:
    def test_staleness_smoke(self, capsys):
        assert main([
            "staleness", "--algorithm", "ssgd", "--steps", "40",
            "--batch-size", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_profile_smoke(self, capsys):
        assert main(["profile", "--requests", "2", "--slo", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "I-Prof on Galaxy S7" in out

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["staleness", "--algorithm", "bogus"])


class TestNewCommands:
    def test_list_includes_new_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fleet-sim" in out
        assert "freshness" in out

    def test_fleet_sim_smoke(self, capsys):
        assert main([
            "fleet-sim", "--users", "4", "--hours", "0.05",
            "--think-time", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "model updates" in out
        assert "staleness" in out

    def test_freshness_smoke(self, capsys):
        assert main(["freshness", "--users", "4"]) == 0
        out = capsys.readouterr().out
        assert "eligibility by hour" in out
        assert "data-to-model delay" in out

    def test_parser_defaults_for_new_commands(self):
        parser = build_parser()
        fleet = parser.parse_args(["fleet-sim"])
        assert fleet.users == 20 and fleet.hours == 0.5
        fresh = parser.parse_args(["freshness"])
        assert fresh.users == 16
        gateway = parser.parse_args(["gateway-sim"])
        assert gateway.trace is False
        assert gateway.trace_sample == 1.0
        assert gateway.journal is None

    def test_gateway_sim_trace_and_report_round_trip(self, capsys, tmp_path):
        path = tmp_path / "journal.jsonl"
        assert main([
            "gateway-sim", "--shards", "2", "--users", "4", "--hours", "0.05",
            "--trace", "--journal", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "critical path over" in out
        assert "span coverage of end-to-end latency: 1.000" in out
        assert path.exists()
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path over" in out
        assert "queue.batcher" in out

    def test_gateway_sim_metrics_formats(self, capsys):
        assert main([
            "gateway-sim", "--users", "4", "--hours", "0.05",
            "--metrics-format", "prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE gateway_results_total counter" in out
        assert main([
            "gateway-sim", "--users", "4", "--hours", "0.05",
            "--metrics-format", "json",
        ]) == 0
        out = capsys.readouterr().out
        assert '"counters"' in out


class TestDurabilityCommands:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["gateway-sim"])
        assert args.durability is False
        assert args.wal_dir is None
        assert args.crash_shard_at is None
        assert args.checkpoint_every == 100

    def test_gateway_sim_durability_and_wal_inspect(self, capsys, tmp_path):
        root = tmp_path / "walroot"
        assert main([
            "gateway-sim", "--shards", "2", "--users", "4", "--hours", "0.05",
            "--durability", "--wal-dir", str(root),
            "--checkpoint-every", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "durability:" in out
        assert (root / "journal.jsonl").exists()

        assert main(["wal-inspect", str(root)]) == 0
        out = capsys.readouterr().out
        assert "wal:" in out
        assert "intact" in out
        assert "ckpt-" in out
        assert "wal_seq=" in out

        # A single shard directory works too.
        shard_dir = sorted(
            p for p in root.iterdir() if (p / "wal").is_dir()
        )[0]
        assert main(["wal-inspect", str(shard_dir)]) == 0
        assert "wal:" in capsys.readouterr().out

    def test_gateway_sim_crash_failover(self, capsys, tmp_path):
        assert main([
            "gateway-sim", "--shards", "3", "--users", "6", "--hours", "0.1",
            "--durability", "--wal-dir", str(tmp_path / "dur"),
            "--crash-shard-at", "120", "--detector-timeout", "60",
            "--checkpoint-every", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "crashes 2, failovers 1" in out  # injection + detector verdict
        assert "restores" in out


class TestStageFlags:
    def test_fleet_sim_with_stages(self, capsys):
        assert main([
            "fleet-sim", "--users", "4", "--hours", "0.05",
            "--think-time", "20", "--stage", "dp:noise=0.0",
            "--stage", "telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "rejections by reason" in out
        assert "pipeline.requests" in out  # telemetry stage report surfaced

    def test_gateway_sim_with_stages(self, capsys):
        assert main([
            "gateway-sim", "--shards", "2", "--users", "4", "--hours", "0.05",
            "--batch-size", "2", "--stage", "robust:window=2",
        ]) == 0
        out = capsys.readouterr().out
        assert "rejections by reason" in out

    def test_rejection_breakdown_names_the_reason(self, capsys):
        assert main([
            "fleet-sim", "--users", "4", "--hours", "0.05",
            "--think-time", "20", "--stage", "admission:min_batch=1000000000",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch_too_small=" in out

    def test_bad_stage_spec_raises(self):
        with pytest.raises(ValueError):
            main(["fleet-sim", "--users", "2", "--hours", "0.02",
                  "--stage", "warp-drive"])

    def test_stage_defaults_to_none(self):
        parser = build_parser()
        assert parser.parse_args(["fleet-sim"]).stage is None
        assert parser.parse_args(["gateway-sim"]).stage is None


class TestFrontendSim:
    def test_push_mode_smoke(self, capsys):
        assert main([
            "frontend-sim", "--mode", "push", "--devices", "4",
            "--uploads", "3", "--shards", "2", "--batch-size", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "received" in out and "applied after drain" in out
        assert "uploads/s" in out

    def test_closed_mode_drives_real_workers(self, capsys):
        assert main([
            "frontend-sim", "--devices", "3", "--uploads", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "acked" in out and "applied after drain" in out

    def test_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["frontend-sim"])
        assert args.mode == "closed"
        assert args.devices == 16
        assert args.window == 8
