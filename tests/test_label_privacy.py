"""Tests for differentially private label-distribution reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.label_privacy import (
    debias_randomized_response,
    laplace_private_counts,
    randomized_response_counts,
    similarity_error,
)


class TestLaplace:
    def test_nonnegative_output(self):
        rng = np.random.default_rng(0)
        out = laplace_private_counts(np.array([0.0, 1.0, 5.0]), 0.5, rng)
        assert (out >= 0).all()

    def test_noise_scale_shrinks_with_epsilon(self):
        rng = np.random.default_rng(1)
        counts = np.full(8, 100.0)
        loose = np.mean([
            np.abs(laplace_private_counts(counts, 0.1, rng) - counts).mean()
            for _ in range(200)
        ])
        tight = np.mean([
            np.abs(laplace_private_counts(counts, 10.0, rng) - counts).mean()
            for _ in range(200)
        ])
        assert tight < loose

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            laplace_private_counts(np.ones(3), 0.0, rng)
        with pytest.raises(ValueError):
            laplace_private_counts(np.array([-1.0]), 1.0, rng)


class TestRandomizedResponse:
    def test_total_count_preserved(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 5, size=400)
        out = randomized_response_counts(labels, 5, 1.0, rng)
        assert out.sum() == 400

    def test_high_epsilon_keeps_labels(self):
        rng = np.random.default_rng(3)
        labels = np.zeros(300, dtype=np.int64)
        out = randomized_response_counts(labels, 4, 20.0, rng)
        assert out[0] >= 295

    def test_low_epsilon_approaches_uniform(self):
        rng = np.random.default_rng(4)
        labels = np.zeros(6000, dtype=np.int64)
        out = randomized_response_counts(labels, 4, 0.01, rng)
        assert out.max() / out.sum() < 0.35   # near uniform 0.25

    def test_debias_recovers_histogram(self):
        rng = np.random.default_rng(5)
        labels = np.repeat(np.arange(4), [500, 300, 150, 50])
        reported = randomized_response_counts(labels, 4, 1.0, rng)
        estimate = debias_randomized_response(reported, 1.0)
        truth = np.array([500.0, 300.0, 150.0, 50.0])
        assert np.abs(estimate - truth).max() < 120   # within sampling noise

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            randomized_response_counts(np.array([0]), 1, 1.0, rng)
        with pytest.raises(ValueError):
            randomized_response_counts(np.array([5]), 4, 1.0, rng)
        with pytest.raises(ValueError):
            randomized_response_counts(np.array([0]), 4, 0.0, rng)


class TestSimilarityError:
    def test_zero_for_identical(self):
        counts = np.array([3.0, 1.0, 0.0])
        reference = np.array([1.0, 1.0, 1.0])
        assert similarity_error(counts, counts, reference) == 0.0

    def test_noise_bounds_similarity_drift(self):
        """The §5 trade-off: more privacy (smaller ε) → larger boost error."""
        rng = np.random.default_rng(6)
        counts = np.array([50.0, 30.0, 0.0, 0.0])
        reference = np.array([10.0, 10.0, 10.0, 10.0])
        errors = {}
        for eps in (0.1, 10.0):
            errs = [
                similarity_error(
                    counts, laplace_private_counts(counts, eps, rng), reference
                )
                for _ in range(200)
            ]
            errors[eps] = float(np.mean(errs))
        assert errors[10.0] < errors[0.1]

    def test_error_bounded_by_one(self):
        rng = np.random.default_rng(7)
        counts = np.array([5.0, 0.0])
        reference = np.array([0.0, 5.0])
        for _ in range(20):
            noisy = laplace_private_counts(counts, 0.5, rng)
            assert 0.0 <= similarity_error(counts, noisy, reference) <= 1.0
