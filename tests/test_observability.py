"""Tests for end-to-end upload tracing, the event journal and exporters.

Covers: deterministic sampling (seeded, PYTHONHASHSEED-independent),
trace propagation through the sync gateway, the async virtual-lane
runtime and the threaded runtime (same upload id in every span, spans
summing to the end-to-end latency), bit-stable virtual traces, the
journal's typed records / ring semantics / JSONL round trip, and the
Prometheus + JSON registry exporters.
"""

from __future__ import annotations

import json
import re

import numpy as np
import pytest

from repro.api import FleetBuilder, RuntimeSpec
from repro.devices.device import DeviceFeatures
from repro.gateway import (
    AggregationCostModel,
    Gateway,
    GatewayConfig,
    ObservabilitySpec,
)
from repro.observability import (
    EventJournal,
    FinishedTrace,
    Span,
    SpanCollector,
    UploadTracer,
    critical_path_table,
    journal_summary,
    load_jsonl,
    registry_snapshot,
    render_prometheus,
    sanitize_metric_name,
)
from repro.server.protocol import TaskResult
from repro.server.telemetry import MetricsRegistry, RejectionStats

DIM = 32


def _features() -> DeviceFeatures:
    return DeviceFeatures(
        available_memory_mb=1024.0,
        total_memory_mb=3072.0,
        temperature_c=30.0,
        sum_max_freq_ghz=8.0,
        energy_per_cpu_second=2e-4,
    )


def _result(worker_id: int, gradient: np.ndarray, pull_step: int = 0) -> TaskResult:
    return TaskResult(
        worker_id=worker_id,
        device_model="Galaxy S7",
        features=_features(),
        pull_step=pull_step,
        gradient=gradient,
        label_counts=np.ones(10),
        batch_size=8,
        computation_time_s=1.0,
        energy_percent=0.01,
    )


def _spec():
    builder = FleetBuilder(np.zeros(DIM), num_labels=10).slo(3.0)
    builder.algorithm("fedavg", learning_rate=0.05)
    return builder.spec()


def _gateway(
    runtime: RuntimeSpec | None = None,
    sample_rate: float = 1.0,
    seed: int = 0,
    shards: int = 1,
) -> Gateway:
    return Gateway.from_spec(
        shards,
        _spec(),
        GatewayConfig(batch_size=4, batch_deadline_s=5.0, sync_every_s=1e9),
        cost_model=AggregationCostModel(per_flush_s=0.5, per_result_s=0.1),
        runtime=runtime,
        observability=ObservabilitySpec(sample_rate=sample_rate, seed=seed),
    )


def _drive(gateway: Gateway, uploads: int = 40, workers: int = 8) -> None:
    rng = np.random.default_rng(7)
    for i in range(uploads):
        gateway.handle_result(
            _result(i % workers, rng.normal(size=DIM)), now=i * 0.25
        )
    gateway.finalize(now=uploads * 0.25 + 10.0)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_deterministic_under_seed(self):
        spec = ObservabilitySpec(sample_rate=0.25, seed=42)
        first = UploadTracer(spec)
        second = UploadTracer(spec)
        picks = [first.would_sample(i) for i in range(10_000)]
        assert picks == [second.would_sample(i) for i in range(10_000)]
        # The realized rate honors the configured one.
        assert 0.22 < np.mean(picks) < 0.28

    def test_seed_changes_the_subset_not_the_rate(self):
        a = UploadTracer(ObservabilitySpec(sample_rate=0.25, seed=1))
        b = UploadTracer(ObservabilitySpec(sample_rate=0.25, seed=2))
        picks_a = [a.would_sample(i) for i in range(10_000)]
        picks_b = [b.would_sample(i) for i in range(10_000)]
        assert picks_a != picks_b
        assert abs(np.mean(picks_a) - np.mean(picks_b)) < 0.03

    def test_extreme_rates(self):
        always = UploadTracer(ObservabilitySpec(sample_rate=1.0))
        never = UploadTracer(ObservabilitySpec(sample_rate=0.0))
        assert all(always.would_sample(i) for i in range(1000))
        assert not any(never.would_sample(i) for i in range(1000))

    def test_begin_advances_seq_even_when_unsampled(self):
        tracer = UploadTracer(ObservabilitySpec(sample_rate=0.0))
        for _ in range(5):
            assert tracer.begin(worker_id=0, now=0.0) is None
        assert tracer.uploads_seen == 5
        assert tracer.started == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ObservabilitySpec(sample_rate=1.5)
        with pytest.raises(ValueError):
            ObservabilitySpec(max_traces=0)
        with pytest.raises(ValueError):
            UploadTracer(ObservabilitySpec(), clock="lamport")


# ----------------------------------------------------------------------
# Trace propagation: sync gateway (virtual clock)
# ----------------------------------------------------------------------
class TestVirtualTraces:
    def test_every_upload_traced_at_rate_one(self):
        gateway = _gateway()
        _drive(gateway, uploads=40)
        tracer = gateway.tracer
        assert tracer.uploads_seen == 40
        assert tracer.started == 40
        assert tracer.collector.finished == 40

    def test_spans_sum_to_end_to_end_latency(self):
        gateway = _gateway()
        _drive(gateway, uploads=40)
        for trace in gateway.tracer.collector.traces:
            assert trace.clock == "virtual"
            span_sum = sum(span.duration for span in trace.spans)
            assert span_sum == pytest.approx(trace.total_s, abs=1e-12)
            # Contiguous: each span starts where the previous ended.
            for prev, cur in zip(trace.spans, trace.spans[1:]):
                assert cur.start == prev.end
            assert [s.name for s in trace.spans] == [
                "queue.batcher", "queue.lane", "apply",
            ]

    def test_upload_ids_unique_and_dense(self):
        gateway = _gateway()
        _drive(gateway, uploads=40)
        ids = sorted(t.upload_id for t in gateway.tracer.collector.traces)
        assert ids == list(range(40))

    def test_cpu_phases_carry_wall_measurements(self):
        # Sync gateway delivers decoded results directly (no codec hop),
        # so the informational phases are the stage chain + fold.
        gateway = _gateway()
        _drive(gateway, uploads=8)
        phases = {
            name
            for trace in gateway.tracer.collector.traces
            for name, _ in trace.cpu_phases
        }
        assert "fold" in phases

    def test_virtual_traces_bit_stable_under_seed(self):
        def run() -> list[FinishedTrace]:
            gateway = _gateway(seed=3)
            _drive(gateway, uploads=40)
            return gateway.tracer.collector.traces

        first, second = run(), run()
        assert len(first) == len(second) == 40
        for a, b in zip(first, second):
            # Spans and totals are virtual-clock arithmetic: bit-equal.
            assert a.spans == b.spans
            assert a.total_s == b.total_s
            assert (a.upload_id, a.worker_id, a.shard_id) == (
                b.upload_id, b.worker_id, b.shard_id,
            )

    def test_sampled_subset_matches_configured_rate(self):
        gateway = _gateway(sample_rate=0.25, seed=11)
        _drive(gateway, uploads=200, workers=16)
        tracer = gateway.tracer
        expected = [i for i in range(200) if tracer.would_sample(i)]
        got = sorted(t.upload_id for t in tracer.collector.traces)
        assert got == expected
        assert tracer.uploads_seen == 200
        assert tracer.started == len(expected)


# ----------------------------------------------------------------------
# Trace propagation: async runtimes
# ----------------------------------------------------------------------
class TestAsyncTraces:
    def test_async_virtual_matches_sync_traces(self):
        # The determinism contract: single-worker async on the virtual
        # clock is bit-identical to the sync gateway — including traces.
        sync_gw = _gateway()
        async_gw = _gateway(
            runtime=RuntimeSpec(mode="async", executor="virtual", workers=1)
        )
        _drive(sync_gw, uploads=40)
        _drive(async_gw, uploads=40)
        try:
            sync_traces = sync_gw.tracer.collector.traces
            async_traces = async_gw.tracer.collector.traces
            assert len(sync_traces) == len(async_traces) == 40
            for a, b in zip(sync_traces, async_traces):
                assert a.upload_id == b.upload_id
                assert a.spans == b.spans
                assert a.total_s == b.total_s
        finally:
            async_gw.runtime.shutdown()

    def test_async_virtual_decode_phase_recorded(self):
        gateway = _gateway(
            runtime=RuntimeSpec(mode="async", executor="virtual", workers=1)
        )
        _drive(gateway, uploads=8)
        try:
            phases = {
                name
                for trace in gateway.tracer.collector.traces
                for name, _ in trace.cpu_phases
            }
            assert "decode" in phases
            assert "fold" in phases
        finally:
            gateway.runtime.shutdown()

    def test_threaded_traces_sum_and_cover_all_uploads(self):
        gateway = _gateway(
            runtime=RuntimeSpec(mode="async", executor="threads", workers=2),
            shards=2,
        )
        rng = np.random.default_rng(5)
        try:
            for i in range(60):
                gateway.handle_result(
                    _result(i % 12, rng.normal(size=DIM)), now=i * 0.1
                )
            gateway.finalize(now=30.0)
            tracer = gateway.tracer
            assert tracer.uploads_seen == 60
            # Every sampled upload either finished or was shed by a lane.
            assert tracer.collector.finished + tracer.dropped == 60
            traces = tracer.collector.traces
            assert traces, "threaded run produced no traces"
            for trace in traces:
                assert trace.clock == "wall"
                assert trace.total_s >= 0.0
                span_sum = sum(span.duration for span in trace.spans)
                assert span_sum == pytest.approx(trace.total_s, rel=1e-9)
                names = [s.name for s in trace.spans]
                assert names[:2] == ["queue.batcher", "queue.lane"]
                assert "decode" in names
                # Wall mode measures phases as spans; nothing rides as
                # informational cpu_phases.
                assert trace.cpu_phases == ()
        finally:
            gateway.runtime.shutdown()


# ----------------------------------------------------------------------
# Span collector
# ----------------------------------------------------------------------
class TestSpanCollector:
    def test_ring_bounds_retention_not_the_count(self):
        collector = SpanCollector(capacity=4)
        for i in range(10):
            collector.add(
                FinishedTrace(
                    upload_id=i, worker_id=0, shard_id="shard-0",
                    clock="virtual", batch_size=1, admitted_at=0.0,
                    total_s=1.0, spans=(Span("apply", 0.0, 1.0),),
                )
            )
        assert len(collector) == 4
        assert collector.finished == 10
        assert [t.upload_id for t in collector.traces] == [6, 7, 8, 9]


# ----------------------------------------------------------------------
# Event journal
# ----------------------------------------------------------------------
class TestEventJournal:
    def _populate(self, journal: EventJournal) -> None:
        journal.admission_shed(1.0, 3, tokens=0.2, rate_per_s=5.0, capacity=10.0)
        journal.steer(
            2.0, 4, action="steer", reason="fresh_straggler",
            from_shard="shard-0", to_shard="shard-1",
            latency_ratio=2.1, from_load=3.0, to_load=0.5,
        )
        journal.sync_round(3.0, 0.25, 2, {"shard-0": 0.6, "shard-1": 0.4})
        journal.lane_shed(4.0, "shard-1", batch_size=4, queue_depth=8)
        journal.evaluation(5.0, 0.91, 17)

    def test_counts_and_dicts(self):
        journal = EventJournal()
        self._populate(journal)
        assert journal.recorded == 5
        assert journal.counts_by_kind() == {
            "admission_shed": 1, "steer": 1, "sync": 1,
            "lane_shed": 1, "eval": 1,
        }
        dicts = journal.to_dicts()
        assert [d["kind"] for d in dicts] == [
            "admission_shed", "steer", "sync", "lane_shed", "eval",
        ]
        assert dicts[1]["reason"] == "fresh_straggler"
        assert dicts[2]["weights"] == {"shard-0": 0.6, "shard-1": 0.4}

    def test_ring_eviction_keeps_monotone_counts(self):
        journal = EventJournal(capacity=3)
        for i in range(8):
            journal.evaluation(float(i), 0.5, i)
        assert len(journal.events) == 3
        assert journal.recorded == 8
        assert journal.counts_by_kind() == {"eval": 8}
        assert [e.time for e in journal.events] == [5.0, 6.0, 7.0]

    def test_jsonl_round_trip(self, tmp_path):
        journal = EventJournal()
        self._populate(journal)
        path = tmp_path / "journal.jsonl"
        extra = [{"kind": "trace", "upload_id": 0, "total_s": 1.5}]
        written = journal.export_jsonl(path, extra=extra)
        assert written == 6
        records = load_jsonl(path)
        assert len(records) == 6
        assert records[-1] == extra[0]
        by_kind = {r["kind"] for r in records}
        assert by_kind == {
            "admission_shed", "steer", "sync", "lane_shed", "eval", "trace",
        }

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("gateway.requests", "requests seen").increment(7)
        registry.gauge("runtime.lanes", "active lanes").set(3.0)
        summary = registry.summary("gateway.batch_size", "batch sizes")
        summary.observe_many(np.array([1.0, 2.0, 3.0, 4.0]))
        hist = registry.histogram(
            "pipeline.staleness_hist", "staleness", buckets=(1.0, 2.0, 4.0)
        )
        hist.observe_many(np.array([0.5, 1.5, 3.0, 9.0]))
        stats = RejectionStats()
        registry.attach_rejections("gateway.rejections", stats)
        return registry

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("gateway.batch_size") == "gateway_batch_size"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a b/c") == "a_b_c"

    def test_prometheus_rendering(self):
        text = render_prometheus(self._registry())
        assert "# TYPE gateway_requests_total counter" in text
        assert "gateway_requests_total 7" in text
        assert "runtime_lanes 3" in text
        assert 'gateway_batch_size{quantile="0.5"} 2.5' in text
        assert "gateway_batch_size_count 4" in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'pipeline_staleness_hist_bucket{le="1"} 1' in text
        assert 'pipeline_staleness_hist_bucket{le="2"} 2' in text
        assert 'pipeline_staleness_hist_bucket{le="4"} 3' in text
        assert 'pipeline_staleness_hist_bucket{le="+Inf"} 4' in text
        assert "pipeline_staleness_hist_count 4" in text
        # Empty rejection breakdown still exposes a zero counter.
        assert "gateway_rejections_total 0" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_snapshot_is_strict_json(self):
        snapshot = registry_snapshot(self._registry())
        encoded = json.dumps(snapshot)  # must not raise (no NaN/ndarray)
        decoded = json.loads(encoded)
        assert decoded["counters"]["gateway.requests"] == 7
        assert decoded["summaries"]["gateway.batch_size"]["count"] == 4
        hist = decoded["histograms"]["pipeline.staleness_hist"]
        assert hist["count"] == 4
        assert hist["buckets"][-1]["le"] is None  # overflow bucket
        assert decoded["rejections"]["gateway.rejections"] == {}

    def test_snapshot_empty_distributions_use_null(self):
        registry = MetricsRegistry()
        registry.summary("empty.summary")
        registry.histogram("empty.hist", buckets=(1.0, 2.0))
        snapshot = registry_snapshot(registry)
        assert snapshot["summaries"]["empty.summary"]["mean"] is None
        assert snapshot["histograms"]["empty.hist"]["p50"] is None
        json.dumps(snapshot)

    def test_snapshot_round_trips_strict_json_with_stable_key_order(self):
        # Register in scrambled order: the snapshot must emit sorted keys
        # so equal registries serialize byte-identically regardless of
        # registration order.
        registry = MetricsRegistry()
        registry.counter("z.last").increment(1)
        registry.counter("a.first").increment(2)
        registry.gauge("m.middle").set(0.5)
        snapshot = registry_snapshot(registry)
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        encoded = json.dumps(snapshot, allow_nan=False)  # strict, no NaN
        assert json.loads(encoded) == snapshot

        scrambled = MetricsRegistry()
        scrambled.gauge("m.middle").set(0.5)
        scrambled.counter("a.first").increment(2)
        scrambled.counter("z.last").increment(1)
        assert json.dumps(registry_snapshot(scrambled)) == json.dumps(snapshot)

    def test_snapshot_nonfinite_gauge_becomes_null(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("runtime.ratio")
        gauge._value = float("nan")  # bypass set()'s finite check
        snapshot = registry_snapshot(registry)
        assert snapshot["gauges"]["runtime.ratio"] is None
        json.dumps(snapshot, allow_nan=False)

    def test_prometheus_nonfinite_values_use_exposition_spellings(self):
        registry = MetricsRegistry()
        registry.gauge("a.nan")._value = float("nan")
        registry.gauge("b.inf")._value = float("inf")
        registry.gauge("c.ninf")._value = float("-inf")
        text = render_prometheus(registry)
        assert "a_nan NaN" in text
        assert "b_inf +Inf" in text
        assert "c_ninf -Inf" in text
        # Never the Python float spellings Prometheus rejects at scrape.
        assert "nan\n" not in text and "inf\n" not in text

    def test_prometheus_label_values_escaped(self):
        class _Rejection:
            def __init__(self, reason: str) -> None:
                self.reason = reason

        registry = MetricsRegistry()
        stats = RejectionStats()
        stats.record(_Rejection('quo"te'))
        stats.record(_Rejection("back\\slash"))
        stats.record(_Rejection("new\nline"))
        registry.attach_rejections("gateway.rejections", stats)
        text = render_prometheus(registry)
        assert '{reason="quo\\"te"}' in text
        assert '{reason="back\\\\slash"}' in text
        assert '{reason="new\\nline"}' in text
        # A raw newline inside a label value would split its sample line;
        # escaped, every line still carries a value after the labels.
        for line in text.splitlines():
            assert line.startswith("#") or line.rsplit(" ", 1)[1].strip()

    def test_prometheus_exposition_conformance(self):
        """Every emitted line parses as comment or sample (format check)."""
        registry = self._registry()
        registry.gauge("weird.gauge")._value = float("inf")

        class _Rejection:
            def __init__(self, reason: str) -> None:
                self.reason = reason

        stats = RejectionStats()
        stats.record(_Rejection('tricky "reason"\nwith\\escapes'))
        registry.attach_rejections("pipeline.rejections", stats)

        comment = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*"\})?'
            r" (NaN|[+-]Inf|[-+0-9.eE]+)$"  # value
        )
        text = render_prometheus(registry)
        for line in text.splitlines():
            assert comment.match(line) or sample.match(line), (
                f"non-conforming exposition line: {line!r}"
            )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def test_critical_path_empty(self):
        assert critical_path_table([]) == "no traces collected"

    def test_critical_path_coverage_is_one_for_gateway_traces(self):
        gateway = _gateway()
        _drive(gateway, uploads=40)
        traces = [t.to_dict() for t in gateway.tracer.collector.traces]
        table = critical_path_table(traces)
        assert "critical path over 40 traced uploads" in table
        assert "queue.batcher" in table
        assert "span coverage of end-to-end latency: 1.000" in table

    def test_journal_summary_names_top_causes(self):
        journal = EventJournal()
        for _ in range(3):
            journal.steer(
                0.0, 1, action="steer", reason="fresh_straggler",
                from_shard="shard-0", to_shard="shard-1",
                latency_ratio=2.0, from_load=1.0, to_load=0.0,
            )
        journal.admission_shed(0.0, 2, tokens=0.0, rate_per_s=1.0, capacity=2.0)
        text = journal_summary(journal.to_dicts(), journal.counts_by_kind())
        assert "steer=3" in text
        assert "steer/fresh_straggler×3" in text
        assert "admission sheds: 1" in text

    def test_journal_summary_empty(self):
        assert journal_summary([], {}) == "journal: no events recorded"


# ----------------------------------------------------------------------
# Journal wiring through the gateway
# ----------------------------------------------------------------------
class TestGatewayJournalWiring:
    def test_sync_rounds_journaled(self):
        gateway = _gateway(shards=2)
        _drive(gateway, uploads=20, workers=8)
        kinds = gateway.journal.counts_by_kind()
        assert kinds.get("sync", 0) >= 1

    def test_admission_sheds_journaled_with_bucket_state(self):
        from repro.server.protocol import TaskRequest

        gateway = Gateway.from_spec(
            1,
            _spec(),
            GatewayConfig(
                batch_size=4, batch_deadline_s=5.0, sync_every_s=1e9,
                admission_rate_per_s=0.5, admission_burst=1,
            ),
            observability=ObservabilitySpec(),
        )
        request = TaskRequest(
            worker_id=1, device_model="Galaxy S7",
            features=_features(), label_counts=np.ones(10),
        )
        gateway.handle_request(request, now=0.0)
        gateway.handle_request(request, now=0.01)  # bucket empty: shed
        sheds = [
            e for e in gateway.journal.events if e.kind == "admission_shed"
        ]
        assert len(sheds) == 1
        assert sheds[0].rate_per_s == 0.5
        assert sheds[0].tokens < 1.0
