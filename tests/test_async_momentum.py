"""Tests for implicit-momentum estimates (core.async_momentum) and the
server's non-finite-gradient guard (failure injection)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adasgd import GradientUpdate, make_adasgd
from repro.core.async_momentum import (
    compensated_momentum,
    estimate_mean_staleness,
    implicit_momentum_from_staleness,
    implicit_momentum_from_workers,
)


class TestImplicitMomentum:
    def test_single_worker_no_momentum(self):
        assert implicit_momentum_from_workers(1) == 0.0

    def test_grows_with_fleet_size(self):
        values = [implicit_momentum_from_workers(n) for n in (2, 10, 100)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(0.99)

    def test_staleness_form_consistent_with_worker_form(self):
        """N workers ⇒ mean staleness ≈ N−1 ⇒ same μ from either formula."""
        for n in (2, 5, 20):
            assert implicit_momentum_from_staleness(n - 1.0) == pytest.approx(
                implicit_momentum_from_workers(n)
            )

    def test_zero_staleness_zero_momentum(self):
        assert implicit_momentum_from_staleness(0.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            implicit_momentum_from_workers(0)
        with pytest.raises(ValueError):
            implicit_momentum_from_staleness(-1.0)

    @given(st.floats(0.0, 1e4))
    @settings(max_examples=60)
    def test_momentum_in_unit_interval(self, tau):
        assert 0.0 <= implicit_momentum_from_staleness(tau) < 1.0


class TestCompensation:
    def test_no_implicit_passes_target_through(self):
        assert compensated_momentum(0.9, 0.0) == pytest.approx(0.9)

    def test_implicit_exceeding_target_yields_zero(self):
        assert compensated_momentum(0.5, 0.8) == 0.0
        assert compensated_momentum(0.5, 0.5) == 0.0

    def test_composition_identity(self):
        """Explicit ∘ implicit must reconstruct the target acceleration."""
        target, implicit = 0.9, 0.6
        explicit = compensated_momentum(target, implicit)
        total = 1.0 - (1.0 - explicit) * (1.0 - implicit)
        assert total == pytest.approx(target)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compensated_momentum(1.0, 0.5)
        with pytest.raises(ValueError):
            compensated_momentum(0.5, 1.0)
        with pytest.raises(ValueError):
            compensated_momentum(-0.1, 0.0)

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    @settings(max_examples=80)
    def test_explicit_never_exceeds_target(self, target, implicit):
        explicit = compensated_momentum(target, implicit)
        assert 0.0 <= explicit <= target


class TestEstimateMeanStaleness:
    def test_mean(self):
        assert estimate_mean_staleness(np.array([0.0, 2.0, 4.0])) == 2.0

    def test_from_server_history(self):
        server = make_adasgd(np.zeros(3), num_labels=2, initial_tau_thres=12.0)
        for tau in (0, 1, 2):
            server.submit(GradientUpdate(
                gradient=np.ones(3), pull_step=max(0, server.clock - tau),
            ))
        assert estimate_mean_staleness(server.applied_staleness()) >= 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            estimate_mean_staleness(np.array([]))
        with pytest.raises(ValueError):
            estimate_mean_staleness(np.array([-1.0]))


class TestNonFiniteGradientGuard:
    def test_nan_gradient_rejected_not_applied(self):
        server = make_adasgd(np.zeros(3), num_labels=2, initial_tau_thres=12.0)
        bad = np.array([1.0, np.nan, 0.0])
        assert server.submit(GradientUpdate(gradient=bad, pull_step=0)) is False
        assert server.clock == 0
        assert server.rejected_count == 1
        np.testing.assert_array_equal(server.current_parameters(), np.zeros(3))

    def test_inf_gradient_rejected(self):
        server = make_adasgd(np.zeros(3), num_labels=2, initial_tau_thres=12.0)
        bad = np.array([np.inf, 0.0, 0.0])
        assert server.submit(GradientUpdate(gradient=bad, pull_step=0)) is False
        assert server.rejected_count == 1

    def test_healthy_traffic_unaffected_by_poison(self):
        """A stream mixing corrupt and healthy uploads trains on the
        healthy ones only."""
        rng = np.random.default_rng(0)
        server = make_adasgd(np.zeros(4), num_labels=2, learning_rate=0.1,
                             initial_tau_thres=12.0)
        healthy = 0
        for i in range(20):
            if i % 4 == 0:
                gradient = np.full(4, np.nan)
            else:
                gradient = rng.normal(size=4)
                healthy += 1
            server.submit(GradientUpdate(gradient=gradient, pull_step=server.clock))
        assert server.clock == healthy
        assert server.rejected_count == 5
        assert np.isfinite(server.current_parameters()).all()
