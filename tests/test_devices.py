"""Tests for the simulated device fleet: catalog, thermal, energy, runtime."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    AMBIENT_C,
    CATALOG,
    AllocationConfig,
    SimulatedDevice,
    ThermalState,
    battery_percent,
    fleet_specs,
    get_spec,
    mwh_from_watts,
    power_draw_w,
)


class TestCatalog:
    def test_lookup(self):
        spec = get_spec("Galaxy S7")
        assert spec.name == "Galaxy S7"
        assert spec.is_big_little

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_spec("iPhone 42")

    def test_catalog_covers_paper_fleet(self):
        """Every device named in Figs. 12-14 and Table 2 must exist."""
        required = [
            "Galaxy S7", "Galaxy S8", "Honor 9", "Honor 10", "Xperia E3",
            "Galaxy S4 mini", "Galaxy S6", "Nexus 6", "MotoG3", "Pixel",
            "HTC U11", "LG-H910",
        ]
        for name in required:
            assert name in CATALOG

    def test_slope_ordering_matches_figure4(self):
        """Fig. 4: Honor 10 fastest, Galaxy S7 mid, Xperia E3 slowest."""
        honor = get_spec("Honor 10").alpha_time
        s7 = get_spec("Galaxy S7").alpha_time
        xperia = get_spec("Xperia E3").alpha_time
        assert honor < s7 < xperia

    def test_feature_helpers(self):
        spec = get_spec("Galaxy S7")
        assert spec.sum_max_freq_ghz > 0
        assert spec.energy_per_cpu_second > 0

    def test_fleet_sampling(self):
        specs = fleet_specs(10, np.random.default_rng(0))
        assert len(specs) == 10
        names = fleet_specs(4, np.random.default_rng(0), names=["Pixel"])
        assert all(s.name == "Pixel" for s in names)


class TestThermal:
    def _state(self):
        return ThermalState(
            heat_rate=0.1, cool_rate=0.05, throttle_temp_c=40.0, throttle_slope=0.05
        )

    def test_heating(self):
        state = self._state()
        state.heat(watts=5.0, busy_seconds=10.0)
        assert state.temperature_c > AMBIENT_C

    def test_cooling_approaches_ambient(self):
        state = self._state()
        state.heat(5.0, 20.0)
        hot = state.temperature_c
        state.cool(1000.0)
        assert AMBIENT_C <= state.temperature_c < hot
        assert state.temperature_c == pytest.approx(AMBIENT_C, abs=0.5)

    def test_throttle_only_above_knee(self):
        state = self._state()
        assert state.throttle_factor() == 1.0
        state.temperature_c = 50.0
        assert state.throttle_factor() == pytest.approx(1.5)

    def test_ceiling(self):
        state = self._state()
        state.heat(100.0, 1000.0)
        assert state.temperature_c <= 55.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            self._state().cool(-1.0)
        with pytest.raises(ValueError):
            self._state().heat(1.0, -1.0)

    @given(st.floats(0.1, 20.0), st.floats(0.1, 100.0))
    @settings(max_examples=50)
    def test_cooling_monotone_property(self, watts, seconds):
        state = self._state()
        state.heat(watts, seconds)
        before = state.temperature_c
        state.cool(10.0)
        assert state.temperature_c <= before


class TestEnergyModel:
    def test_power_includes_idle(self):
        spec = get_spec("Galaxy S7")
        alloc = AllocationConfig(big_cores=4)
        power = power_draw_w(spec.idle_power_w, spec.big, spec.little, alloc)
        assert power == pytest.approx(spec.idle_power_w + 4 * spec.big.power_w)

    def test_too_many_cores_rejected(self):
        spec = get_spec("Galaxy S7")
        with pytest.raises(ValueError):
            power_draw_w(
                spec.idle_power_w, spec.big, spec.little, AllocationConfig(big_cores=9)
            )

    def test_little_cores_on_symmetric_device_rejected(self):
        spec = get_spec("Xperia E3")   # symmetric, no little cluster
        with pytest.raises(ValueError):
            power_draw_w(
                spec.idle_power_w, spec.big, spec.little,
                AllocationConfig(big_cores=1, little_cores=1),
            )

    def test_empty_allocation_rejected(self):
        with pytest.raises(ValueError):
            AllocationConfig(big_cores=0, little_cores=0)

    def test_unit_conversions(self):
        assert mwh_from_watts(3.6, 1000.0) == pytest.approx(1000.0)
        assert battery_percent(57.0, 11400.0) == pytest.approx(0.5)


class TestSimulatedDevice:
    def _device(self, name="Galaxy S7", seed=0):
        return SimulatedDevice(get_spec(name), np.random.default_rng(seed))

    def test_time_linear_in_batch_size(self):
        """Fig. 4's core observation: cost scales linearly with workload."""
        device = self._device()
        device.spec = device.spec  # keep instance
        small = np.median([
            self._device(seed=s).execute(100).computation_time_s for s in range(9)
        ])
        large = np.median([
            self._device(seed=s).execute(1000).computation_time_s for s in range(9)
        ])
        assert large / small == pytest.approx(10.0, rel=0.15)

    def test_heterogeneity(self):
        """Different devices must show very different slopes (Fig. 4)."""
        fast = self._device("Honor 10").execute(500).computation_time_s
        slow = self._device("Xperia E3").execute(500).computation_time_s
        assert slow > 3.0 * fast

    def test_thermal_throttling_slows_down(self):
        device = self._device("Honor 10")
        cold = device.true_time_slope()
        for _ in range(20):
            device.execute(2000)
        hot = device.true_time_slope()
        assert hot > cold

    def test_battery_drains(self):
        device = self._device()
        start = device.battery_percent_remaining
        device.execute(2000)
        assert device.battery_percent_remaining < start

    def test_energy_percent_consistency(self):
        device = self._device()
        m = device.execute(500)
        assert m.energy_percent == pytest.approx(
            100.0 * m.energy_mwh / device.spec.battery_mwh
        )

    def test_features_within_physical_bounds(self):
        device = self._device()
        for _ in range(10):
            f = device.features()
            assert 0 < f.available_memory_mb < f.total_memory_mb
            assert f.temperature_c >= AMBIENT_C - 1.0
            assert f.sum_max_freq_ghz == device.spec.sum_max_freq_ghz

    def test_feature_vector_shape(self):
        vec = self._device().features().as_vector()
        assert vec.shape == (6,)
        assert vec[-1] == 1.0   # bias term

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            self._device().execute(0)

    def test_reset(self):
        device = self._device()
        device.execute(3000)
        device.reset()
        assert device.battery_percent_remaining == 100.0
        assert device.thermal.temperature_c == AMBIENT_C
        assert device.tasks_executed == 0

    def test_default_allocation_big_only(self):
        device = self._device("Galaxy S7")
        alloc = device.default_allocation()
        assert alloc.big_cores == 4
        assert alloc.little_cores == 0

    def test_available_allocations(self):
        device = self._device("Galaxy S7")
        allocs = device.available_allocations()
        assert AllocationConfig(4, 4) in allocs
        assert AllocationConfig(1, 0) in allocs
        assert all(a.total_cores >= 1 for a in allocs)

    def test_fewer_cores_is_slower(self):
        device = self._device()
        full = device.true_time_slope(AllocationConfig(4, 0))
        half = device.true_time_slope(AllocationConfig(2, 0))
        assert half > full

    def test_little_cores_slower_than_big(self):
        device = self._device()
        big = device.true_time_slope(AllocationConfig(4, 0))
        little = device.true_time_slope(AllocationConfig(0, 4))
        assert little > big
