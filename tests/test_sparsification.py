"""Tests for top-k sparsification with error feedback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.server.sparsification import (
    ErrorFeedbackCompressor,
    SparseGradient,
    top_k_sparsify,
)


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        grad = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        sparse = top_k_sparsify(grad, 2)
        assert set(sparse.indices) == {1, 3}
        assert np.allclose(sparse.densify()[[1, 3]], [-5.0, 3.0])

    def test_densify_zeros_elsewhere(self):
        grad = np.arange(10, dtype=float)
        sparse = top_k_sparsify(grad, 3)
        dense = sparse.densify()
        assert (dense[:7] == 0).all()
        assert np.allclose(dense[7:], [7.0, 8.0, 9.0])

    def test_k_clipped_to_dimension(self):
        grad = np.ones(4)
        sparse = top_k_sparsify(grad, 100)
        assert sparse.values.size == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_sparsify(np.ones(4), 0)

    def test_wire_size(self):
        sparse = top_k_sparsify(np.ones(100), 5)
        assert sparse.wire_floats == 10

    def test_index_validation(self):
        with pytest.raises(ValueError):
            SparseGradient(
                indices=np.array([10]), values=np.array([1.0]), dimension=5
            )


class TestErrorFeedback:
    def test_residual_accumulates_dropped_mass(self):
        compressor = ErrorFeedbackCompressor(dimension=4, k=1)
        grad = np.array([10.0, 1.0, 2.0, 3.0])
        sparse = compressor.compress(grad)
        assert set(sparse.indices) == {0}
        assert np.allclose(compressor.residual, [0.0, 1.0, 2.0, 3.0])

    def test_nothing_lost_over_time(self):
        """Sum of transmissions + final residual equals sum of gradients."""
        rng = np.random.default_rng(0)
        compressor = ErrorFeedbackCompressor(dimension=20, k=3)
        total_in = np.zeros(20)
        total_out = np.zeros(20)
        for _ in range(50):
            grad = rng.normal(size=20)
            total_in += grad
            total_out += compressor.compress(grad).densify()
        assert np.allclose(total_in, total_out + compressor.residual, atol=1e-9)

    def test_residual_eventually_transmitted(self):
        """A coordinate starved once must be sent when its residual grows."""
        compressor = ErrorFeedbackCompressor(dimension=3, k=1)
        # Coordinate 2 is small each round but accumulates.
        for _ in range(10):
            sparse = compressor.compress(np.array([1.0, 0.0, 0.4]))
            if 2 in set(sparse.indices):
                return
        pytest.fail("starved coordinate never transmitted despite feedback")

    def test_compression_ratio(self):
        compressor = ErrorFeedbackCompressor(dimension=1000, k=10)
        assert compressor.compression_ratio() == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ErrorFeedbackCompressor(dimension=0, k=1)
        with pytest.raises(ValueError):
            ErrorFeedbackCompressor(dimension=10, k=0)
        compressor = ErrorFeedbackCompressor(dimension=10, k=2)
        with pytest.raises(ValueError):
            compressor.compress(np.ones(5))


class TestSGDWithSparsification:
    def test_training_still_converges(self):
        """Error-feedback top-k SGD solves a quadratic like dense SGD."""
        rng = np.random.default_rng(1)
        target = rng.normal(size=10)
        compressor = ErrorFeedbackCompressor(dimension=10, k=2)
        x = np.zeros(10)
        for _ in range(400):
            grad = 2.0 * (x - target)
            x = x - 0.2 * compressor.compress(grad).densify()
        assert np.abs(x - target).max() < 0.05


class TestAbortRestore:
    """Error feedback must not lose the shipped component of an aborted upload."""

    def test_restore_recovers_full_residual(self):
        compressor = ErrorFeedbackCompressor(dimension=4, k=1)
        grad = np.array([10.0, 1.0, 2.0, 3.0])
        sparse = compressor.compress(grad)
        # compress() assumed the payload reaches the server; the upload
        # aborted, so the shipped component goes back into the residual.
        compressor.restore(sparse)
        assert np.allclose(compressor.residual, grad)

    def test_next_upload_compensates_for_aborted_one(self):
        rng = np.random.default_rng(7)
        aborted_then_sent = ErrorFeedbackCompressor(dimension=12, k=3)
        never_compressed = ErrorFeedbackCompressor(dimension=12, k=3)
        lost_grad = rng.normal(size=12)
        sparse = aborted_then_sent.compress(lost_grad)
        aborted_then_sent.restore(sparse)
        never_compressed.residual[:] = lost_grad
        # After restore, the compressor behaves as if the aborted gradient
        # had only ever lived in the residual: the next compress emits the
        # same payload either way.
        next_grad = rng.normal(size=12)
        a = aborted_then_sent.compress(next_grad)
        b = never_compressed.compress(next_grad)
        assert np.array_equal(np.sort(a.indices), np.sort(b.indices))
        assert np.allclose(a.densify(), b.densify())
        assert np.allclose(aborted_then_sent.residual, never_compressed.residual)

    def test_nothing_lost_with_aborts(self):
        """Conservation holds when a random subset of uploads never lands."""
        rng = np.random.default_rng(3)
        compressor = ErrorFeedbackCompressor(dimension=20, k=3)
        total_in = np.zeros(20)
        total_delivered = np.zeros(20)
        for round_index in range(60):
            grad = rng.normal(size=20)
            total_in += grad
            sparse = compressor.compress(grad)
            if round_index % 3 == 0:  # this upload aborts mid-flight
                compressor.restore(sparse)
            else:
                total_delivered += sparse.densify()
        assert np.allclose(
            total_in, total_delivered + compressor.residual, atol=1e-9
        )

    def test_restore_dimension_mismatch(self):
        compressor = ErrorFeedbackCompressor(dimension=10, k=2)
        wrong = SparseGradient(
            indices=np.array([0]), values=np.array([1.0]), dimension=5
        )
        with pytest.raises(ValueError):
            compressor.restore(wrong)
