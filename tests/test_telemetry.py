"""Tests for the server metrics registry (server.telemetry)."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="forward"):
            Counter("requests").increment(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("in_flight")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_non_finite_rejected(self):
        gauge = Gauge("x")
        with pytest.raises(ValueError):
            gauge.set(float("nan"))
        with pytest.raises(ValueError):
            gauge.set(float("inf"))


class TestSummary:
    def test_percentiles_and_mean(self):
        summary = Summary("latency")
        for value in range(1, 101):
            summary.observe(float(value))
        assert summary.count == 100
        assert summary.mean() == pytest.approx(50.5)
        assert summary.percentile(50) == pytest.approx(50.5)
        assert summary.max() == 100.0

    def test_empty_summary_is_nan(self):
        summary = Summary("latency")
        assert np.isnan(summary.percentile(90))
        assert np.isnan(summary.mean())
        assert np.isnan(summary.max())

    def test_window_evicts(self):
        summary = Summary("latency", window=3)
        for value in (100.0, 1.0, 2.0, 3.0):
            summary.observe(value)
        assert summary.max() == 3.0

    def test_invalid_inputs(self):
        summary = Summary("latency")
        with pytest.raises(ValueError):
            summary.observe(float("inf"))
        with pytest.raises(ValueError):
            summary.percentile(101)
        with pytest.raises(ValueError):
            Summary("latency", window=0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_percentile_order_property(self, values):
        summary = Summary("x")
        for value in values:
            summary.observe(value)
        assert summary.percentile(10) <= summary.percentile(50) <= summary.percentile(90)
        assert summary.percentile(100) == pytest.approx(summary.max())


class TestMetricsRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.summary("c") is registry.summary("c")

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="another kind"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="another kind"):
            registry.summary("x")

    def test_report_contains_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("tasks_total").increment(7)
        registry.gauge("in_flight").set(2.0)
        summary = registry.summary("latency_s")
        summary.observe(1.0)
        summary.observe(3.0)
        report = registry.report()
        assert "tasks_total" in report and "7" in report
        assert "in_flight" in report
        assert "latency_s" in report and "n=2" in report

    def test_report_renders_empty_summary(self):
        registry = MetricsRegistry()
        registry.summary("never_observed")
        assert "(empty)" in registry.report()

    def test_empty_registry_report(self):
        assert MetricsRegistry().report() == ""


class TestRejectionStats:
    def _stats(self, capacity=512):
        from repro.server.telemetry import RejectionStats

        return RejectionStats(capacity=capacity)

    def _rejection(self, reason):
        from repro.server.protocol import TaskRejection

        return TaskRejection(reason=reason, batch_size=1, similarity=0.5)

    def test_counts_per_reason(self):
        from repro.server.protocol import RejectionReason

        stats = self._stats()
        for _ in range(3):
            stats.record(self._rejection(RejectionReason.BATCH_TOO_SMALL))
        stats.record(self._rejection(RejectionReason.SIMILARITY_TOO_HIGH))
        assert stats.counts[RejectionReason.BATCH_TOO_SMALL] == 3
        assert stats.counts[RejectionReason.SIMILARITY_TOO_HIGH] == 1
        assert stats.total == 4

    def test_ring_caps_recents_but_not_counts(self):
        from repro.server.protocol import RejectionReason

        stats = self._stats(capacity=5)
        for _ in range(9):
            stats.record(self._rejection(RejectionReason.OVERLOADED))
        assert len(stats.recent) == 5
        assert stats.total == 9
        assert stats.counts[RejectionReason.OVERLOADED] == 9

    def test_breakdown_rendering(self):
        from repro.server.protocol import RejectionReason

        stats = self._stats()
        assert stats.breakdown() == "none"
        stats.record(self._rejection(RejectionReason.SIMILARITY_TOO_HIGH))
        stats.record(self._rejection(RejectionReason.BATCH_TOO_SMALL))
        assert stats.breakdown() == "batch_too_small=1 similarity_too_high=1"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            self._stats(capacity=0)

    def test_attach_rejections_surfaces_in_report(self):
        from repro.server.protocol import RejectionReason

        registry = MetricsRegistry()
        stats = self._stats()
        registry.attach_rejections("gateway.rejections", stats)
        assert "none" in registry.report()
        stats.record(self._rejection(RejectionReason.OVERLOADED))
        stats.record(self._rejection(RejectionReason.OVERLOADED))
        report = registry.report()
        assert "gateway.rejections" in report
        assert "overloaded=2" in report
        breakdowns = registry.rejection_breakdowns()
        assert breakdowns["gateway.rejections"][RejectionReason.OVERLOADED] == 2

    def test_attach_rejections_accepts_callable_rejects_junk(self):
        registry = MetricsRegistry()
        registry.attach_rejections("live", lambda: {"overloaded": 3})
        assert registry.rejection_breakdowns()["live"] == {"overloaded": 3}
        with pytest.raises(TypeError):
            registry.attach_rejections("bad", object())


class TestThreadSafety:
    def test_counter_hammered_from_eight_threads(self):
        counter = Counter("hot")
        increments_per_thread = 20_000

        def hammer():
            for _ in range(increments_per_thread):
                counter.increment()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * increments_per_thread

    def test_gauge_and_summary_concurrent_updates(self):
        gauge = Gauge("depth")
        summary = Summary("latency")
        per_thread = 2_000

        def work(k: int):
            for i in range(per_thread):
                gauge.add(1.0)
                summary.observe(float(k * per_thread + i))

        threads = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 4 * per_thread
        assert summary.count == 4 * per_thread

    def test_histogram_concurrent_observe(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        per_thread = 5_000

        def work():
            for i in range(per_thread):
                hist.observe(float(i % 5))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4 * per_thread

    def test_registry_factories_race_to_one_object(self):
        registry = MetricsRegistry()
        seen = []

        def grab():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


class TestSummaryCache:
    def test_materialization_cached_between_observes(self):
        summary = Summary("latency")
        summary.observe(1.0)
        summary.observe(2.0)
        first = summary._materialized()
        again = summary._materialized()
        assert first is again  # cached, not rebuilt per query
        summary.observe(3.0)
        rebuilt = summary._materialized()
        assert rebuilt is not first
        assert rebuilt.tolist() == [1.0, 2.0, 3.0]

    def test_quantiles_single_pass_matches_percentile(self):
        summary = Summary("latency")
        summary.observe_many(np.arange(1.0, 101.0))
        qs = summary.quantiles((50.0, 90.0, 99.0))
        assert qs[0] == pytest.approx(summary.percentile(50))
        assert qs[1] == pytest.approx(summary.percentile(90))
        assert qs[2] == pytest.approx(summary.percentile(99))

    def test_observe_many_invalidates_cache(self):
        summary = Summary("latency")
        summary.observe(10.0)
        assert summary.max() == 10.0
        summary.observe_many(np.array([20.0, 30.0]))
        assert summary.max() == 30.0
        assert summary.sum() == pytest.approx(60.0)


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 9.0):
            hist.observe(value)
        # side="left": a value equal to a bound belongs to that bucket.
        assert hist.bucket_counts.tolist() == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.min() == 0.5
        assert hist.max() == 9.0
        assert hist.sum() == pytest.approx(15.0)
        assert hist.mean() == pytest.approx(3.0)

    def test_observe_many_matches_scalar_observe(self):
        values = np.random.default_rng(0).uniform(0.0, 10.0, size=500)
        one = Histogram("a", buckets=(1.0, 2.0, 4.0, 8.0))
        many = Histogram("b", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in values:
            one.observe(float(value))
        many.observe_many(values)
        assert one.bucket_counts.tolist() == many.bucket_counts.tolist()
        assert one.sum() == pytest.approx(many.sum())
        assert one.min() == many.min() and one.max() == many.max()

    def test_percentiles_monotone_and_clamped(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        hist.observe_many(np.random.default_rng(1).uniform(0.5, 6.0, 2_000))
        ps = [hist.percentile(q) for q in (0, 10, 50, 90, 100)]
        assert ps == sorted(ps)
        assert ps[0] >= hist.min()
        assert ps[-1] <= hist.max()

    def test_percentile_tracks_exact_extremes(self):
        hist = Histogram("h", buckets=(10.0,))
        hist.observe(3.0)
        hist.observe(7.0)
        # Both fall in bucket [.., 10]; interpolation is clamped to the
        # observed [3, 7], never reporting the bucket edge 10.
        assert 3.0 <= hist.percentile(50) <= 7.0
        assert hist.percentile(100) <= 7.0

    def test_empty_histogram_is_nan(self):
        hist = Histogram("h", buckets=(1.0,))
        assert np.isnan(hist.percentile(50))
        assert np.isnan(hist.mean())
        assert np.isnan(hist.max())

    def test_single_sample_percentile_is_the_sample(self):
        hist = Histogram("h", buckets=(1.0, 4.0, 10.0))
        hist.observe(2.5)
        # With one observation every percentile collapses to it: the
        # interpolation range is clamped to [min, max] = [2.5, 2.5].
        for q in (0, 1, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(2.5)

    def test_count_le_exact_at_bucket_bounds(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe_many(np.array([0.5, 1.0, 1.5, 3.0, 9.0]))
        # observe puts value==bound in that bound's bucket, so counting
        # at a configured bound is exact — the SLO engine's good-event
        # counter relies on this.
        assert hist.count_le(1.0) == 2
        assert hist.count_le(2.0) == 3
        assert hist.count_le(4.0) == 4
        assert hist.count_le(0.0) == 0
        # Off-edge bounds round down to the nearest edge — including past
        # the largest edge, where the overflow bucket's values are
        # unknowable and therefore never counted as good.
        assert hist.count_le(1.7) == 2
        assert hist.count_le(100.0) == 4

    def test_count_le_empty(self):
        assert Histogram("h", buckets=(1.0,)).count_le(1.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))
        hist = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            hist.observe(float("nan"))
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_registry_histogram_factory_and_report(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_hist", buckets=(1.0, 2.0))
        assert registry.histogram("latency_hist") is hist
        with pytest.raises(ValueError, match="another kind"):
            registry.counter("latency_hist")
        hist.observe(0.5)
        report = registry.report()
        assert "latency_hist" in report and "[histogram]" in report
