"""Tests for the server metrics registry (server.telemetry)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.telemetry import Counter, Gauge, MetricsRegistry, Summary


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="forward"):
            Counter("requests").increment(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("in_flight")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_non_finite_rejected(self):
        gauge = Gauge("x")
        with pytest.raises(ValueError):
            gauge.set(float("nan"))
        with pytest.raises(ValueError):
            gauge.set(float("inf"))


class TestSummary:
    def test_percentiles_and_mean(self):
        summary = Summary("latency")
        for value in range(1, 101):
            summary.observe(float(value))
        assert summary.count == 100
        assert summary.mean() == pytest.approx(50.5)
        assert summary.percentile(50) == pytest.approx(50.5)
        assert summary.max() == 100.0

    def test_empty_summary_is_nan(self):
        summary = Summary("latency")
        assert np.isnan(summary.percentile(90))
        assert np.isnan(summary.mean())
        assert np.isnan(summary.max())

    def test_window_evicts(self):
        summary = Summary("latency", window=3)
        for value in (100.0, 1.0, 2.0, 3.0):
            summary.observe(value)
        assert summary.max() == 3.0

    def test_invalid_inputs(self):
        summary = Summary("latency")
        with pytest.raises(ValueError):
            summary.observe(float("inf"))
        with pytest.raises(ValueError):
            summary.percentile(101)
        with pytest.raises(ValueError):
            Summary("latency", window=0)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_percentile_order_property(self, values):
        summary = Summary("x")
        for value in values:
            summary.observe(value)
        assert summary.percentile(10) <= summary.percentile(50) <= summary.percentile(90)
        assert summary.percentile(100) == pytest.approx(summary.max())


class TestMetricsRegistry:
    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.summary("c") is registry.summary("c")

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="another kind"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="another kind"):
            registry.summary("x")

    def test_report_contains_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("tasks_total").increment(7)
        registry.gauge("in_flight").set(2.0)
        summary = registry.summary("latency_s")
        summary.observe(1.0)
        summary.observe(3.0)
        report = registry.report()
        assert "tasks_total" in report and "7" in report
        assert "in_flight" in report
        assert "latency_s" in report and "n=2" in report

    def test_report_renders_empty_summary(self):
        registry = MetricsRegistry()
        registry.summary("never_observed")
        assert "(empty)" in registry.report()

    def test_empty_registry_report(self):
        assert MetricsRegistry().report() == ""


class TestRejectionStats:
    def _stats(self, capacity=512):
        from repro.server.telemetry import RejectionStats

        return RejectionStats(capacity=capacity)

    def _rejection(self, reason):
        from repro.server.protocol import TaskRejection

        return TaskRejection(reason=reason, batch_size=1, similarity=0.5)

    def test_counts_per_reason(self):
        from repro.server.protocol import RejectionReason

        stats = self._stats()
        for _ in range(3):
            stats.record(self._rejection(RejectionReason.BATCH_TOO_SMALL))
        stats.record(self._rejection(RejectionReason.SIMILARITY_TOO_HIGH))
        assert stats.counts[RejectionReason.BATCH_TOO_SMALL] == 3
        assert stats.counts[RejectionReason.SIMILARITY_TOO_HIGH] == 1
        assert stats.total == 4

    def test_ring_caps_recents_but_not_counts(self):
        from repro.server.protocol import RejectionReason

        stats = self._stats(capacity=5)
        for _ in range(9):
            stats.record(self._rejection(RejectionReason.OVERLOADED))
        assert len(stats.recent) == 5
        assert stats.total == 9
        assert stats.counts[RejectionReason.OVERLOADED] == 9

    def test_breakdown_rendering(self):
        from repro.server.protocol import RejectionReason

        stats = self._stats()
        assert stats.breakdown() == "none"
        stats.record(self._rejection(RejectionReason.SIMILARITY_TOO_HIGH))
        stats.record(self._rejection(RejectionReason.BATCH_TOO_SMALL))
        assert stats.breakdown() == "batch_too_small=1 similarity_too_high=1"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            self._stats(capacity=0)
