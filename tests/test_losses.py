"""Unit tests for loss functions, including gradient checks."""

from __future__ import annotations

import numpy as np

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    mse,
    sigmoid,
    softmax,
    softmax_cross_entropy,
)


class TestSoftmax:
    def test_stability_with_large_logits(self):
        out = softmax(np.array([[1000.0, 1000.0, 1000.0]]))
        assert np.allclose(out, 1.0 / 3.0)

    def test_rows_normalized(self):
        logits = np.random.default_rng(0).normal(size=(6, 9))
        assert np.allclose(softmax(logits).sum(axis=1), 1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[20.0, 0.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 5))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert abs(loss - np.log(5)) < 1e-9

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 3])
        _, grad = softmax_cross_entropy(logits, labels)

        def f(z):
            return softmax_cross_entropy(z, labels)[0]

        numeric = numerical_gradient(f, logits.copy())
        assert max_relative_error(grad, numeric) < 1e-6

    def test_soft_targets(self):
        logits = np.random.default_rng(2).normal(size=(2, 3))
        hard = np.array([1, 2])
        onehot = np.eye(3)[hard]
        loss_hard, grad_hard = softmax_cross_entropy(logits, hard)
        loss_soft, grad_soft = softmax_cross_entropy(logits, onehot)
        assert abs(loss_hard - loss_soft) < 1e-9
        assert np.allclose(grad_hard, grad_soft)

    def test_gradient_rows_sum_to_zero(self):
        logits = np.random.default_rng(3).normal(size=(5, 7))
        _, grad = softmax_cross_entropy(logits, np.zeros(5, dtype=int))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestSigmoidBCE:
    def test_sigmoid_bounds(self):
        x = np.linspace(-100, 100, 41)
        s = sigmoid(x)
        assert (s >= 0).all() and (s <= 1).all()
        assert abs(sigmoid(np.array([0.0]))[0] - 0.5) < 1e-12

    def test_bce_gradient(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(3, 5))
        targets = (rng.random((3, 5)) < 0.4).astype(float)
        _, grad = binary_cross_entropy_with_logits(logits, targets)

        def f(z):
            return binary_cross_entropy_with_logits(z, targets)[0]

        numeric = numerical_gradient(f, logits.copy())
        assert max_relative_error(grad, numeric) < 1e-6

    def test_bce_extreme_logits_no_overflow(self):
        logits = np.array([[800.0, -800.0]])
        targets = np.array([[1.0, 0.0]])
        loss, grad = binary_cross_entropy_with_logits(logits, targets)
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()
        assert loss < 1e-6


class TestMSE:
    def test_zero_at_match(self):
        x = np.random.default_rng(5).normal(size=(4, 4))
        loss, grad = mse(x, x.copy())
        assert loss == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient(self):
        rng = np.random.default_rng(6)
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        _, grad = mse(pred, target)
        numeric = numerical_gradient(lambda p: mse(p, target)[0], pred.copy())
        assert max_relative_error(grad, numeric) < 1e-6
